"""Tests for CPU cycle / instruction accounting and the cost table."""

import dataclasses

import pytest

from repro.host import CpuAccounting, ExecMode, SoftwareCosts, StepCost


class TestCharging:
    def test_charge_returns_duration(self):
        accounting = CpuAccounting()
        assert accounting.charge(500, ExecMode.KERNEL, "vfs", "syscall") == 500

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CpuAccounting().charge(-1, ExecMode.USER, "fio", "x")

    def test_busy_by_mode(self):
        accounting = CpuAccounting()
        accounting.charge(300, ExecMode.USER, "fio", "rw")
        accounting.charge(700, ExecMode.KERNEL, "vfs", "syscall")
        assert accounting.busy_ns() == 1000
        assert accounting.busy_ns(ExecMode.USER) == 300
        assert accounting.busy_ns(ExecMode.KERNEL) == 700

    def test_utilization(self):
        accounting = CpuAccounting()
        accounting.charge(250, ExecMode.KERNEL, "vfs", "syscall")
        assert accounting.utilization(1000) == 0.25
        assert accounting.utilization(1000, ExecMode.USER) == 0.0
        assert accounting.utilization(0) == 0.0

    def test_utilization_caps_at_one(self):
        accounting = CpuAccounting()
        accounting.charge(5000, ExecMode.KERNEL, "vfs", "syscall")
        assert accounting.utilization(1000) == 1.0


class TestBreakdowns:
    def make_populated(self):
        accounting = CpuAccounting()
        accounting.charge(600, ExecMode.KERNEL, "blk-mq", "blk_mq_poll", loads=60, stores=20)
        accounting.charge(200, ExecMode.KERNEL, "nvme-driver", "nvme_poll", loads=30, stores=10)
        accounting.charge(200, ExecMode.KERNEL, "vfs", "syscall", loads=10, stores=10)
        accounting.charge(100, ExecMode.USER, "fio", "fio_rw", loads=5, stores=5)
        return accounting

    def test_cycles_by_module(self):
        by_module = self.make_populated().cycles_by_module(ExecMode.KERNEL)
        assert by_module == {"blk-mq": 600, "nvme-driver": 200, "vfs": 200}

    def test_cycle_share_by_function(self):
        shares = self.make_populated().cycle_share_by_function(ExecMode.KERNEL)
        assert shares["blk_mq_poll"] == pytest.approx(0.6)
        assert shares["nvme_poll"] == pytest.approx(0.2)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_instruction_totals(self):
        accounting = self.make_populated()
        assert accounting.total_loads() == 105
        assert accounting.total_stores() == 45

    def test_load_share_by_function(self):
        shares = self.make_populated().load_share_by_function()
        assert shares["blk_mq_poll"] == pytest.approx(60 / 105)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_empty_shares(self):
        assert CpuAccounting().cycle_share_by_function() == {}
        assert CpuAccounting().load_share_by_function() == {}

    def test_profiles_sorted_by_cycles(self):
        profiles = self.make_populated().profiles()
        assert profiles[0].function == "blk_mq_poll"
        assert profiles[0].loads == 60


class TestSoftwareCosts:
    def test_step_cost_validation(self):
        with pytest.raises(ValueError):
            StepCost(ns=-1)
        with pytest.raises(ValueError):
            StepCost(ns=1, loads=-2)

    def test_derived_periods(self):
        costs = SoftwareCosts()
        assert costs.kernel_poll_iter_ns == (
            costs.blk_mq_poll_iter.ns + costs.nvme_poll_iter.ns
        )
        assert costs.spdk_iter_ns == (
            costs.spdk_outer_iter.ns
            + costs.spdk_inner_iter.ns
            + costs.spdk_check_enabled_iter.ns
        )

    def test_submit_path_sums_steps(self):
        costs = SoftwareCosts()
        expected = (
            costs.syscall_entry.ns + costs.vfs_submit.ns + costs.blkmq_submit.ns
            + costs.nvme_driver_submit.ns + costs.doorbell_write.ns
        )
        assert costs.submit_path_ns == expected

    def test_interrupt_completion_includes_wakeup(self):
        costs = SoftwareCosts()
        assert costs.interrupt_completion_ns > costs.irq_delivery_ns

    def test_costs_are_immutable_but_replaceable(self):
        costs = SoftwareCosts()
        with pytest.raises(dataclasses.FrozenInstanceError):
            costs.irq_delivery_ns = 0
        variant = dataclasses.replace(costs, irq_delivery_ns=123)
        assert variant.irq_delivery_ns == 123

    def test_spdk_iterates_faster_than_kernel_poll(self):
        """The structural fact behind Fig. 21: the user-space loop is an
        order of magnitude tighter than blk_mq_poll + nvme_poll."""
        costs = SoftwareCosts()
        assert costs.spdk_iter_ns * 5 < costs.kernel_poll_iter_ns
