"""Tests for the fio job-file parser and CLI runner."""

import pytest

from repro.workloads.fiofile import (
    FioFileError,
    load_fio_file,
    parse_fio_file,
    parse_size,
)
from repro.workloads.job import IoEngineKind


class TestParseSize:
    def test_suffixes(self):
        assert parse_size("4k") == 4096
        assert parse_size("4K") == 4096
        assert parse_size("1m") == 1 << 20
        assert parse_size("2g") == 2 << 30
        assert parse_size("512") == 512
        assert parse_size("16kb") == 16384

    def test_garbage_rejected(self):
        with pytest.raises(FioFileError):
            parse_size("4q")
        with pytest.raises(FioFileError):
            parse_size("")


BASIC = """
[global]
ioengine=libaio
bs=4k
iodepth=8
direct=1

[jobA]
rw=randread
number_ios=500
"""


class TestParseFioFile:
    def test_basic_job(self):
        jobs = parse_fio_file(BASIC)
        assert len(jobs) == 1
        job = jobs[0]
        assert job.name == "jobA"
        assert job.rw == "randread"
        assert job.block_size == 4096
        assert job.iodepth == 8
        assert job.engine is IoEngineKind.LIBAIO
        assert job.io_count == 500

    def test_global_overridden_per_job(self):
        text = BASIC + "\n[jobB]\nrw=write\nbs=16k\nnumber_ios=10\n"
        jobs = parse_fio_file(text)
        assert jobs[1].block_size == 16384
        assert jobs[1].rw == "write"
        assert jobs[1].iodepth == 8  # inherited

    def test_sync_engine_forces_qd1(self):
        text = "[j]\nioengine=pvsync2\niodepth=32\nrw=read\nnumber_ios=10\n"
        assert parse_fio_file(text)[0].iodepth == 1

    def test_size_derives_io_count(self):
        # no number_ios -> falls back to size
        jobs = parse_fio_file("[j]\nrw=read\nbs=4k\nsize=1m\n")
        assert jobs[0].io_count == 256

    def test_rwmix(self):
        jobs = parse_fio_file(
            "[j]\nrw=randrw\nrwmixwrite=30\nbs=4k\nnumber_ios=10\n"
        )
        assert jobs[0].write_fraction == pytest.approx(0.3)
        jobs = parse_fio_file(
            "[j]\nrw=randrw\nrwmixread=30\nbs=4k\nnumber_ios=10\n"
        )
        assert jobs[0].write_fraction == pytest.approx(0.7)

    def test_numjobs_replicates_with_distinct_seeds(self):
        jobs = parse_fio_file(
            "[j]\nrw=read\nbs=4k\nnumber_ios=10\nnumjobs=3\nrandseed=7\n"
        )
        assert len(jobs) == 3
        assert [job.seed for job in jobs] == [7, 8, 9]
        assert jobs[1].name == "j.1"

    def test_spdk_engine(self):
        jobs = parse_fio_file(
            "[j]\nioengine=spdk\nrw=read\nbs=4k\nnumber_ios=10\n"
        )
        assert jobs[0].engine is IoEngineKind.SPDK

    def test_unknown_option_rejected(self):
        with pytest.raises(FioFileError):
            parse_fio_file("[j]\nrw=read\nbs=4k\nnumber_ios=1\nfsync=1\n")

    def test_unknown_engine_rejected(self):
        with pytest.raises(FioFileError):
            parse_fio_file("[j]\nioengine=io_uring\nrw=read\nnumber_ios=1\n")

    def test_missing_sizing_rejected(self):
        with pytest.raises(FioFileError):
            parse_fio_file("[j]\nrw=read\nbs=4k\n")

    def test_empty_file_rejected(self):
        with pytest.raises(FioFileError):
            parse_fio_file("")
        with pytest.raises(FioFileError):
            parse_fio_file("[global]\nbs=4k\n")

    def test_ignored_keys_accepted(self):
        jobs = parse_fio_file(
            "[j]\ndirect=1\nfilename=/dev/nvme0n1\nrw=read\nbs=4k\nnumber_ios=5\n"
        )
        assert jobs[0].io_count == 5


class TestShippedJobFiles:
    def test_example_files_parse(self):
        micro = load_fio_file("examples/jobs/paper_microbench.fio")
        assert len(micro) == 3
        assert {job.rw for job in micro} == {"randread", "randwrite", "randrw"}
        sync = load_fio_file("examples/jobs/sync_latency.fio")
        assert all(job.engine is IoEngineKind.PSYNC for job in sync)


class TestCliRunner:
    def test_run_jobfile(self, tmp_path):
        path = tmp_path / "t.fio"
        path.write_text(
            "[global]\nioengine=pvsync2\nbs=4k\n[r]\nrw=randread\nnumber_ios=60\n"
        )
        from repro.fio import run_jobfile
        from repro.core.experiment import DeviceKind

        results = run_jobfile(str(path), device=DeviceKind.ULL)
        assert len(results) == 1
        assert results[0].latency.count == 60

    def test_cli_main(self, tmp_path, capsys):
        path = tmp_path / "t.fio"
        path.write_text("[r]\nrw=read\nbs=4k\nnumber_ios=40\n")
        from repro.fio import main

        assert main([str(path), "--completion", "poll"]) == 0
        out = capsys.readouterr().out
        assert "lat (usec)" in out and "iops" in out

    def test_concurrent_jobs_share_one_device(self, tmp_path):
        path = tmp_path / "c.fio"
        path.write_text(
            "[global]\nbs=4k\nnumber_ios=50\n"
            "[r]\nrw=randread\n[w]\nrw=randwrite\n"
        )
        from repro.core.experiment import DeviceKind
        from repro.fio import run_jobfile

        results = run_jobfile(str(path), device=DeviceKind.ULL, concurrent=True)
        assert len(results) == 2
        # Concurrent jobs share wall time: both report the same duration.
        assert results[0].duration_ns == results[1].duration_ns

    def test_concurrent_mixing_spdk_and_kernel_rejected(self, tmp_path):
        path = tmp_path / "m.fio"
        path.write_text(
            "[a]\nioengine=spdk\nrw=read\nbs=4k\nnumber_ios=5\n"
            "[b]\nioengine=pvsync2\nrw=read\nbs=4k\nnumber_ios=5\n"
        )
        from repro.fio import run_jobfile

        with pytest.raises(ValueError):
            run_jobfile(str(path), concurrent=True)
