"""Tests for latency recording, time series, and power integration."""

import pytest
from hypothesis import given, strategies as st

from repro.stats import LatencyRecorder, TimeSeries, WindowedAverage
from repro.stats.timeseries import PowerIntegrator


class TestLatencyRecorder:
    def test_mean_and_count(self):
        recorder = LatencyRecorder()
        recorder.extend([1000, 2000, 3000])
        assert len(recorder) == 3
        assert recorder.mean() == 2000

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1)

    def test_empty_summary_is_zeroes(self):
        summary = LatencyRecorder().summary()
        assert summary.count == 0
        assert summary.mean_ns == 0.0

    def test_percentile_uses_observed_values(self):
        recorder = LatencyRecorder()
        recorder.extend(range(1, 101))
        # 'higher' interpolation: an actually observed sample.
        assert recorder.percentile(99) in range(1, 101)
        assert recorder.percentile(100) == 100

    def test_five_nines_equals_max_for_small_samples(self):
        recorder = LatencyRecorder()
        recorder.extend([10] * 999 + [5000])
        assert recorder.summary().p99999_ns == 5000

    def test_unit_conversions(self):
        recorder = LatencyRecorder()
        recorder.record(12_600)
        summary = recorder.summary()
        assert summary.mean_us == pytest.approx(12.6)
        assert summary.p99999_us == pytest.approx(12.6)

    def test_str_mentions_count(self):
        recorder = LatencyRecorder()
        recorder.record(1000)
        assert "n=1" in str(recorder.summary())

    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=200))
    def test_property_summary_ordering(self, samples):
        recorder = LatencyRecorder()
        recorder.extend(samples)
        summary = recorder.summary()
        assert summary.min_ns <= summary.p50_ns <= summary.p99_ns
        assert summary.p99_ns <= summary.p99999_ns <= summary.max_ns
        tolerance = 1e-9 * max(1.0, summary.max_ns)
        assert summary.min_ns - tolerance <= summary.mean_ns <= summary.max_ns + tolerance


class TestTimeSeries:
    def test_records_and_windows(self):
        series = TimeSeries()
        for t, v in [(0, 10.0), (5, 20.0), (12, 30.0), (19, 50.0)]:
            series.record(t, v)
        windowed = series.windowed(10)
        assert windowed.starts_ns == (0, 10)
        assert windowed.means == (15.0, 40.0)

    def test_time_must_be_monotonic(self):
        series = TimeSeries()
        series.record(10, 1.0)
        with pytest.raises(ValueError):
            series.record(5, 2.0)

    def test_empty_window(self):
        assert len(WindowedAverage.from_points([], [], 10)) == 0

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            WindowedAverage.from_points([0], [1.0], 0)

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50),
        st.integers(min_value=1, max_value=1000),
    )
    def test_property_window_means_bounded_by_extremes(self, values, window):
        times = list(range(0, len(values) * 7, 7))
        windowed = WindowedAverage.from_points(times, values, window)
        assert min(windowed.means) >= min(values) - 1e-9
        assert max(windowed.means) <= max(values) + 1e-9


class TestPowerIntegrator:
    def test_constant_power(self):
        integrator = PowerIntegrator(idle_watts=4.0)
        assert integrator.average_watts(1000) == pytest.approx(4.0)

    def test_step_change(self):
        integrator = PowerIntegrator(idle_watts=2.0)
        integrator.set_power(500, 6.0)
        # 500ns at 2W + 500ns at 6W = mean 4W.
        assert integrator.average_watts(1000) == pytest.approx(4.0)

    def test_transitions_must_be_ordered(self):
        integrator = PowerIntegrator(idle_watts=1.0)
        integrator.set_power(100, 2.0)
        with pytest.raises(ValueError):
            integrator.set_power(50, 3.0)

    def test_series_captures_transitions(self):
        integrator = PowerIntegrator(idle_watts=1.0)
        integrator.set_power(10, 5.0)
        integrator.set_power(20, 1.0)
        assert len(integrator.series) == 2
        assert list(integrator.series.values) == [5.0, 1.0]
