"""Tests for the NVMe protocol substrate: commands, rings, controller."""

import pytest

from repro.nvme import (
    CompletionQueue,
    NvmeCommand,
    NvmeController,
    NvmeTimings,
    Opcode,
    QueueFull,
    StatusCode,
    SubmissionQueue,
)
from repro.sim import Simulator
from repro.ssd import SsdDevice
from repro.ssd.device import IoOp
from tests.test_ssd_device import tiny_config


class TestCommandEncoding:
    def test_byte_round_trip(self):
        command = NvmeCommand.from_bytes(1, Opcode.READ, 8192, 4096)
        assert command.slba == 16
        assert command.nlb == 7  # 0's-based
        assert command.offset_bytes == 8192
        assert command.nbytes == 4096

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            NvmeCommand.from_bytes(1, Opcode.READ, 100, 4096)

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            NvmeCommand(cid=-1, opcode=Opcode.READ, slba=0, nlb=0)


class TestSubmissionQueue:
    def test_fifo_fetch(self):
        sq = SubmissionQueue(8)
        for cid in range(3):
            sq.push(NvmeCommand.from_bytes(cid, Opcode.READ, 0, 4096))
        assert sq.fetch().cid == 0
        assert sq.fetch().cid == 1
        assert sq.occupancy() == 1

    def test_full_queue_rejects(self):
        sq = SubmissionQueue(4)
        for cid in range(3):  # one slot sacrificed
            sq.push(NvmeCommand.from_bytes(cid, Opcode.READ, 0, 4096))
        assert sq.is_full
        with pytest.raises(QueueFull):
            sq.push(NvmeCommand.from_bytes(9, Opcode.READ, 0, 4096))

    def test_doorbell_rings_on_push(self):
        sq = SubmissionQueue(8)
        sq.push(NvmeCommand.from_bytes(0, Opcode.READ, 0, 4096))
        assert sq.tail_doorbell.writes == 1
        assert sq.tail_doorbell.value == 1

    def test_fetch_empty_rejected(self):
        with pytest.raises(IndexError):
            SubmissionQueue(4).fetch()

    def test_wraparound(self):
        sq = SubmissionQueue(4)
        for round_trip in range(10):
            sq.push(NvmeCommand.from_bytes(round_trip, Opcode.READ, 0, 4096))
            assert sq.fetch().cid == round_trip


class TestCompletionQueue:
    def test_phase_tag_detection(self):
        cq = CompletionQueue(4)
        assert cq.peek() is None
        cq.post(cid=1, sq_head=0, status=StatusCode.SUCCESS)
        entry = cq.peek()
        assert entry is not None and entry.cid == 1 and entry.phase == 1

    def test_reap_consumes(self):
        cq = CompletionQueue(4)
        cq.post(1, 0, StatusCode.SUCCESS)
        assert cq.reap().cid == 1
        assert cq.peek() is None
        assert cq.head_doorbell.writes == 1

    def test_phase_flips_on_wrap(self):
        cq = CompletionQueue(2)
        for cid in range(6):
            cq.post(cid, 0, StatusCode.SUCCESS)
            entry = cq.reap()
            assert entry is not None and entry.cid == cid
        # After three wraps the phase settled back; detection still works.

    def test_stale_phase_not_detected(self):
        cq = CompletionQueue(2)
        cq.post(0, 0, StatusCode.SUCCESS)
        cq.reap()
        cq.post(1, 0, StatusCode.SUCCESS)
        cq.reap()
        # ring wrapped; an old-phase slot must not read as new
        assert cq.peek() is None


class TestQueuePair:
    def make_pair(self, **kwargs):
        sim = Simulator()
        device = SsdDevice(sim, tiny_config())
        device.precondition(1.0)
        controller = NvmeController(sim, device)
        return sim, controller.create_queue_pair(**kwargs)

    def test_submit_completes_through_cqe(self):
        sim, qpair = self.make_pair()
        pending = qpair.submit(IoOp.READ, 0, 4096)
        assert not pending.cqe_event.triggered
        sim.run_until_event(pending.cqe_event)
        assert pending.cqe_ns is not None
        # Protocol adds SQ fetch + CQE post around the device time.
        assert pending.cqe_ns >= qpair.timings.sq_fetch_ns
        assert qpair.completed == 1

    def test_msi_raised_when_interrupts_enabled(self):
        sim, qpair = self.make_pair(interrupts_enabled=True)
        fired = []
        qpair.on_msi(fired.append)
        pending = qpair.submit(IoOp.READ, 0, 4096)
        sim.run()
        assert fired and fired[0] is pending

    def test_no_msi_when_polling(self):
        sim, qpair = self.make_pair(interrupts_enabled=False)
        fired = []
        qpair.on_msi(fired.append)
        qpair.submit(IoOp.READ, 0, 4096)
        sim.run()
        assert fired == []

    def test_outstanding_tracking(self):
        sim, qpair = self.make_pair()
        qpair.submit(IoOp.READ, 0, 4096)
        qpair.submit(IoOp.WRITE, 4096, 4096)
        assert qpair.outstanding == 2
        sim.run()
        assert qpair.outstanding == 0

    def test_cids_unique_among_outstanding(self):
        sim, qpair = self.make_pair()
        cids = {qpair.submit(IoOp.READ, 0, 4096).command.cid for _ in range(50)}
        assert len(cids) == 50

    def test_protocol_latency_is_configurable(self):
        sim = Simulator()
        device = SsdDevice(sim, tiny_config())
        device.precondition(1.0)
        slow = NvmeController(
            sim, device, timings=NvmeTimings(sq_fetch_ns=50_000, cqe_post_ns=50_000)
        ).create_queue_pair()
        pending = slow.submit(IoOp.READ, 0, 4096)
        sim.run_until_event(pending.cqe_event)
        assert pending.cqe_ns >= 100_000
