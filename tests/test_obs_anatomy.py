"""Tests for the latency-anatomy report and the runner integration."""

import pytest

from repro.core.experiment import DeviceKind, build_device
from repro.kstack.completion import CompletionMethod
from repro.kstack.stack import KernelStack
from repro.obs import AnatomyReport, Observability
from repro.sim.engine import Simulator
from repro.workloads.job import FioJob, IoEngineKind
from repro.workloads.runner import run_job


def run_traced_job(rw="randrw", io_count=60, engine=IoEngineKind.PSYNC,
                   iodepth=1, completion=CompletionMethod.INTERRUPT):
    obs = Observability()
    with obs:
        sim = Simulator()
        device = build_device(sim, DeviceKind.ULL, precondition=0.5)
        stack = KernelStack(sim, device, completion=completion)
        job = FioJob(
            name="traced", rw=rw, engine=engine,
            iodepth=iodepth, io_count=io_count,
        )
        result = run_job(sim, stack, job)
    return result, obs


class TestAnatomyReport:
    def test_aggregate_conservation(self):
        _result, obs = run_traced_job()
        report = AnatomyReport.from_tracer(obs.tracer)
        report.check_conservation()
        assert report.io_count == 60

    def test_breakdown_sums_to_mean_latency(self):
        _result, obs = run_traced_job()
        report = AnatomyReport.from_tracer(obs.tracer)
        total = sum(report.breakdown_us().values())
        assert total == pytest.approx(report.mean_latency_us)

    def test_shares_sum_to_one(self):
        _result, obs = run_traced_job()
        report = AnatomyReport.from_tracer(obs.tracer)
        assert sum(report.share(name) for name in report.names) == pytest.approx(1.0)

    def test_op_filter_partitions_totals(self):
        _result, obs = run_traced_job()
        full = AnatomyReport.from_tracer(obs.tracer)
        reads = AnatomyReport.from_tracer(obs.tracer, op="read")
        writes = AnatomyReport.from_tracer(obs.tracer, op="write")
        assert reads.io_count + writes.io_count == full.io_count
        assert (
            reads.total_latency_ns + writes.total_latency_ns
            == full.total_latency_ns
        )

    def test_render_lists_every_phase(self):
        _result, obs = run_traced_job()
        report = AnatomyReport.from_tracer(obs.tracer)
        text = report.render()
        for name in report.names:
            assert name in text
        assert "latency anatomy over 60 I/Os" in text

    def test_empty_tracer(self):
        report = AnatomyReport.from_tracer(Observability().tracer)
        report.check_conservation()
        assert report.io_count == 0 and report.mean_latency_us == 0.0

    def test_leak_detected(self):
        broken = AnatomyReport(
            rows=(), io_count=1, total_latency_ns=500
        )
        with pytest.raises(AssertionError):
            broken.check_conservation()


class TestJobResultHook:
    def test_anatomy_available_when_traced(self):
        result, _obs = run_traced_job()
        report = result.anatomy()
        assert report is not None
        report.check_conservation()
        # The anatomy's mean must equal the recorder's mean: both sides
        # measure the same 60 I/Os.
        assert report.mean_latency_us == pytest.approx(
            result.latency.mean_us, rel=1e-9
        )

    def test_anatomy_filters_by_op(self):
        result, _obs = run_traced_job()
        reads = result.anatomy(op="read")
        assert reads.io_count == result.read_latency.count

    def test_anatomy_none_without_tracing(self):
        sim = Simulator()
        device = build_device(sim, DeviceKind.ULL, precondition=0.5)
        stack = KernelStack(sim, device)
        job = FioJob(name="plain", rw="randread", io_count=20)
        result = run_job(sim, stack, job)
        assert result.obs is None
        assert result.anatomy() is None

    def test_async_engine_traces_conserve(self):
        result, obs = run_traced_job(
            rw="randread", engine=IoEngineKind.LIBAIO, iodepth=4, io_count=80
        )
        from repro.obs import verify_conservation

        assert verify_conservation(obs.tracer) == 80
        assert result.anatomy().io_count == 80

    def test_metrics_reach_registry(self):
        _result, obs = run_traced_job(rw="randread", io_count=30)
        assert obs.registry.get("io.reads").value == 30
        assert obs.registry.get("io.latency_us").count == 30
        assert obs.registry.get("nvme.sq.submitted").value == 30


class TestDisabledPathUnchanged:
    def test_summary_identical_with_and_without_tracing(self):
        def summary(traced):
            if traced:
                result, _obs = run_traced_job(rw="randread", io_count=40)
            else:
                sim = Simulator()
                device = build_device(sim, DeviceKind.ULL, precondition=0.5)
                stack = KernelStack(sim, device)
                job = FioJob(name="plain", rw="randread", io_count=40)
                result = run_job(sim, stack, job)
            latency = result.latency
            return (latency.mean_us, latency.p99_us, result.duration_ns)

        assert summary(True) == summary(False)
