"""Tests for the Chrome trace_event JSON and metrics exporters."""

import json

from repro.obs import (
    MetricsRegistry,
    SpanTracer,
    chrome_trace_events,
    metrics_to_csv,
    metrics_to_text,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.export import _assign_lanes
from repro.ssd.device import IoOp


def make_tracer():
    tracer = SpanTracer()
    tracer.new_sim()
    first = tracer.begin_io(IoOp.READ, 0, 4096, 1000)
    first.phase("submit", 1000)
    first.phase("ctrl", 1500)
    first.annotate("map_fetch", 1600, 1800, lpn=3)
    first.finish(3000)
    second = tracer.begin_io(IoOp.WRITE, 8192, 4096, 3500)
    second.phase("submit", 3500)
    second.finish(4000)
    tracer.span("die0", "gc", 2000, 9000, migrated_pages=12)
    return tracer


class TestLaneAssignment:
    def test_sequential_ios_share_lane_zero(self):
        tracer = make_tracer()
        lanes = _assign_lanes(tracer.finished_ios)
        assert lanes == {0: 0, 1: 0}

    def test_overlapping_ios_get_distinct_lanes(self):
        tracer = SpanTracer()
        tracer.new_sim()
        a = tracer.begin_io(IoOp.READ, 0, 4096, 0)
        b = tracer.begin_io(IoOp.READ, 4096, 4096, 100)
        a.finish(1000)
        b.finish(900)
        lanes = _assign_lanes(tracer.finished_ios)
        assert lanes[a.io_id] != lanes[b.io_id]


class TestChromeTrace:
    def test_document_shape(self):
        document = to_chrome_trace(make_tracer())
        assert set(document) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert document["displayTimeUnit"] == "ns"

    def test_events_schema(self):
        events = chrome_trace_events(make_tracer())
        assert events, "no events produced"
        for event in events:
            assert event["ph"] in ("X", "M")
            assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["cat"] in ("io", "io.detail", "device")
                assert event["dur"] >= 0
                assert event["args"]["dur_ns"] >= 0

    def test_categories_cover_all_span_kinds(self):
        events = chrome_trace_events(make_tracer())
        cats = {event["cat"] for event in events if event["ph"] == "X"}
        assert cats == {"io", "io.detail", "device"}

    def test_timestamps_are_microseconds(self):
        events = chrome_trace_events(make_tracer())
        submit = next(
            e for e in events if e["ph"] == "X" and e["name"] == "submit"
        )
        assert submit["ts"] == 1.0  # 1000 ns
        assert submit["args"]["start_ns"] == 1000

    def test_metadata_names_processes_threads_and_tracks(self):
        events = chrome_trace_events(make_tracer())
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert names == {"process_name", "thread_name"}
        thread_labels = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert "die0" in thread_labels

    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(make_tracer(), str(path))
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == count
        by_name = {}
        for event in document["traceEvents"]:
            by_name.setdefault(event["name"], []).append(event)
        assert "submit" in by_name and "gc" in by_name
        assert by_name["gc"][0]["args"]["migrated_pages"] == 12


class TestMetricsDumps:
    def make_registry(self):
        registry = MetricsRegistry()
        registry.counter("reads", unit="B", help="bytes read").inc(4096)
        registry.gauge("qd", unit="cmds").set(3, 100)
        registry.histogram("lat", unit="us").observe(12.5)
        return registry

    def test_text_contains_every_instrument(self):
        text = metrics_to_text(self.make_registry(), 200)
        assert "reads" in text and "qd" in text and "lat" in text
        assert "4096" in text

    def test_text_empty_registry(self):
        assert "no metrics" in metrics_to_text(MetricsRegistry())

    def test_csv_schema(self):
        import csv
        import io

        rows = list(csv.DictReader(io.StringIO(metrics_to_csv(self.make_registry()))))
        assert [row["name"] for row in rows] == ["reads", "qd", "lat"]
        assert rows[0]["kind"] == "counter" and rows[0]["value"] == "4096"
        assert rows[2]["kind"] == "histogram" and rows[2]["count"] == "1"
