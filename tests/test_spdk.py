"""Tests for the SPDK stack: hugepages, uio binding, and the fast path."""

import pytest

from repro.host.accounting import ExecMode
from repro.kstack import CompletionMethod, KernelStack
from repro.sim import Simulator
from repro.spdk import DriverBinding, HugePageAllocator, SpdkStack, UioBinding
from repro.spdk.hugepage import HUGEPAGE_BYTES
from repro.ssd import SsdDevice
from repro.ssd.device import IoOp
from tests.test_ssd_device import tiny_config


class TestHugePages:
    def test_pool_size(self):
        allocator = HugePageAllocator(n_pages=4)
        assert allocator.pool_bytes == 4 * HUGEPAGE_BYTES

    def test_allocations_are_aligned_and_disjoint(self):
        allocator = HugePageAllocator(4)
        first = allocator.allocate(5000, "a")
        second = allocator.allocate(100, "b")
        assert first.nbytes == 8192  # rounded to 4 KiB
        assert second.base_addr >= first.end_addr

    def test_exhaustion(self):
        allocator = HugePageAllocator(1)
        allocator.allocate(HUGEPAGE_BYTES, "big")
        with pytest.raises(MemoryError):
            allocator.allocate(4096, "more")

    def test_map_bar(self):
        allocator = HugePageAllocator(1)
        region = allocator.map_bar(16 * 1024)
        assert region.purpose == "pcie-bar"

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            HugePageAllocator(0)
        with pytest.raises(ValueError):
            HugePageAllocator(1).allocate(0, "x")


class TestUioBinding:
    def test_starts_bound_to_kernel(self):
        binding = UioBinding()
        assert binding.binding is DriverBinding.KERNEL_NVME
        assert binding.interrupts_available
        assert not binding.user_space_ready

    def test_unbind_then_bind_uio(self):
        binding = UioBinding()
        binding.unbind()
        binding.bind_uio()
        assert binding.user_space_ready
        assert not binding.interrupts_available

    def test_direct_rebind_rejected(self):
        binding = UioBinding()
        with pytest.raises(RuntimeError):
            binding.bind_uio()  # must unbind first

    def test_double_unbind_rejected(self):
        binding = UioBinding()
        binding.unbind()
        with pytest.raises(RuntimeError):
            binding.unbind()

    def test_give_back_to_kernel(self):
        binding = UioBinding()
        binding.unbind()
        binding.bind_uio()
        binding.unbind()
        binding.bind_kernel()
        assert binding.interrupts_available
        assert binding.transitions == 4


def make_spdk():
    sim = Simulator()
    device = SsdDevice(sim, tiny_config())
    device.precondition(1.0)
    return sim, SpdkStack(sim, device)


def run_ios(sim, stack, count=30, op=IoOp.READ):
    latencies = []

    def flow():
        for index in range(count):
            latency = yield from stack.sync_io(op, (index % 64) * 4096, 4096)
            latencies.append(latency)

    process = sim.process(flow())
    sim.run_until_event(process)
    assert process.triggered
    return latencies


class TestSpdkStack:
    def test_setup_binds_uio_and_maps_bars(self):
        _, stack = make_spdk()
        assert stack.binding.user_space_ready
        assert stack.bar_region.purpose == "pcie-bar"
        assert not stack.qpair.interrupts_enabled

    def test_everything_runs_in_user_mode(self):
        sim, stack = make_spdk()
        run_ios(sim, stack, count=20)
        assert stack.accounting.busy_ns(ExecMode.KERNEL) == 0
        assert stack.accounting.busy_ns(ExecMode.USER) > 0

    def test_cpu_utilization_is_total(self):
        sim, stack = make_spdk()
        start = sim.now
        run_ios(sim, stack, count=30)
        utilization = stack.accounting.utilization(sim.now - start)
        assert utilization > 0.98

    def test_spdk_beats_kernel_interrupt_latency(self):
        sim_spdk, spdk = make_spdk()
        mean_spdk = sum(run_ios(sim_spdk, spdk)) / 30
        sim_k = Simulator()
        device = SsdDevice(sim_k, tiny_config())
        device.precondition(1.0)
        kernel = KernelStack(sim_k, device, completion=CompletionMethod.INTERRUPT)
        latencies = []

        def flow():
            for index in range(30):
                latency = yield from kernel.sync_io(IoOp.READ, index * 4096, 4096)
                latencies.append(latency)

        process = sim_k.process(flow())
        sim_k.run_until_event(process)
        mean_kernel = sum(latencies) / 30
        assert mean_spdk < mean_kernel
        # Kernel bypass saves the syscall + stack + interrupt overhead.
        assert 2_000 < mean_kernel - mean_spdk < 7_000

    def test_memory_traffic_attributed_to_spdk_functions(self):
        sim, stack = make_spdk()
        run_ios(sim, stack, count=20)
        loads = stack.accounting.loads_by_function()
        assert loads["spdk_nvme_qpair_process_completions"] > 0
        assert loads["nvme_pcie_qpair_process_completions"] > 0
        assert loads["nvme_qpair_check_enabled"] > 0

    def test_check_enabled_charged_on_every_submission(self):
        sim, stack = make_spdk()
        run_ios(sim, stack, count=10)
        profiles = {
            p.function: p for p in stack.accounting.profiles()
        }
        check = profiles["nvme_qpair_check_enabled"]
        # At least one charge per submission plus per spin iteration.
        assert check.loads >= 10 * stack.costs.spdk_check_enabled_iter.loads

    def test_async_submission(self):
        sim, stack = make_spdk()
        pending = stack.submit_async(IoOp.READ, 0, 4096)
        sim.run_until_event(pending.cqe_event)
        assert pending.cqe_ns is not None
