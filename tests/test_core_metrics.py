"""Tests for figure result containers and the text report renderer."""

import pytest

from repro.core.metrics import FigureResult, Series
from repro.core.report import render_figure


def sample_figure() -> FigureResult:
    return FigureResult(
        figure_id="figXX",
        title="Sample",
        x_label="block size",
        y_label="latency (us)",
        series=(
            Series.from_points("ULL Poll", ["4KB", "8KB"], [9.6, 11.0], "us"),
            Series.from_points("ULL Interrupt", ["4KB", "8KB"], [11.8, 13.1], "us"),
        ),
        notes="demo",
        extras={"peak": 1234.5},
    )


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series.from_points("s", [1, 2], [1.0])

    def test_value_at(self):
        series = Series.from_points("s", ["a", "b"], [1.0, 2.0])
        assert series.value_at("b") == 2.0
        with pytest.raises(KeyError):
            series.value_at("c")


class TestFigureResult:
    def test_get_exact_label(self):
        figure = sample_figure()
        assert figure.get("ULL Poll").y == (9.6, 11.0)
        with pytest.raises(KeyError):
            figure.get("missing")

    def test_find_by_substrings(self):
        figure = sample_figure()
        assert figure.find("poll").label == "ULL Poll"
        assert figure.find("interrupt").label == "ULL Interrupt"
        with pytest.raises(KeyError):
            figure.find("ULL")  # ambiguous

    def test_labels(self):
        assert sample_figure().labels == ("ULL Poll", "ULL Interrupt")


class TestRenderer:
    def test_render_contains_everything(self):
        text = render_figure(sample_figure())
        assert "figXX" in text
        assert "ULL Poll" in text
        assert "11.8" in text
        assert "demo" in text
        assert "peak" in text

    def test_render_rows_align_with_columns(self):
        text = render_figure(sample_figure())
        lines = [l for l in text.splitlines() if "|" in l]
        assert len(lines) == 3  # header + 2 series
