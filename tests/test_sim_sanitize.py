"""The runtime sim sanitizer (REPRO_SIM_SANITIZE=1).

Static analysis catches what it can see in the source; these tests pin
the runtime half: clock-monotonicity and single-engine-ownership checks
fire loudly when violated and cost nothing when disabled.
"""

from __future__ import annotations

import pytest

from repro.sim import sanitize
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.sanitize import ENV_VAR, SimSanitizeError


@pytest.fixture
def sanitized(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "1")


class TestEnabled:
    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_VAR, value)
        assert sanitize.enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "2"])
    def test_falsy_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_VAR, value)
        assert not sanitize.enabled()

    def test_unset_is_off(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert not sanitize.enabled()

    def test_sampled_at_simulator_construction(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        hot = Simulator()
        monkeypatch.setenv(ENV_VAR, "0")
        cold = Simulator()
        assert hot.sanitize and not cold.sanitize


class TestClockCheck:
    def test_check_clock_raises_on_backwards_time(self):
        with pytest.raises(SimSanitizeError, match="backwards"):
            sanitize.check_clock(now=100, when=99)

    def test_check_clock_allows_forward_and_equal(self):
        sanitize.check_clock(now=100, when=100)
        sanitize.check_clock(now=100, when=101)

    def test_corrupted_queue_entry_detected(self, sanitized):
        sim = Simulator()
        sim.schedule(50, lambda: None)
        # Corrupt the heap the way only a bug could: an entry stamped
        # before a time the clock has already reached.
        sim.now = 200
        with pytest.raises(SimSanitizeError, match="backwards"):
            sim.run()

    def test_unsanitized_run_does_not_check(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "0")
        sim = Simulator()
        sim.schedule(50, lambda: None)
        sim.now = 200
        sim.run()  # silently tolerated without the sanitizer


class TestOwnership:
    def test_check_owner_raises_cross_engine(self):
        a, b = Simulator(), Simulator()
        event = Event(a)
        with pytest.raises(SimSanitizeError, match="cross-engine"):
            sanitize.check_owner(b, event, "wait")

    def test_check_owner_accepts_own_event(self):
        sim = Simulator()
        sanitize.check_owner(sim, Event(sim), "wait")

    def test_check_owner_ignores_unowned_objects(self):
        sanitize.check_owner(Simulator(), object(), "wait")

    def test_any_of_rejects_foreign_event(self, sanitized):
        a, b = Simulator(), Simulator()
        foreign = Event(b)
        with pytest.raises(SimSanitizeError, match="AnyOf"):
            a.any_of([a.event(), foreign])

    def test_any_of_accepts_own_events(self, sanitized):
        sim = Simulator()
        race = sim.any_of([sim.timeout(5), sim.timeout(9)])
        sim.run()
        assert race.triggered

    def test_any_of_unchecked_without_sanitizer(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "0")
        a, b = Simulator(), Simulator()
        a.any_of([a.event(), Event(b)])  # historical (buggy) tolerance


class TestSanitizedSimulation:
    def test_results_identical_with_and_without(self, monkeypatch):
        """The sanitizer must observe, never perturb."""

        def timestamps(env_value):
            monkeypatch.setenv(ENV_VAR, env_value)
            sim = Simulator()
            seen = []

            def proc():
                for delay in (3, 1, 4, 1, 5):
                    yield sim.timeout(delay)
                    seen.append(sim.now)

            sim.process(proc())
            sim.run()
            return seen

        assert timestamps("1") == timestamps("0")

    def test_error_is_an_assertion_error(self):
        # Promised by the docs: plain `except AssertionError` catches it.
        assert issubclass(SimSanitizeError, AssertionError)
