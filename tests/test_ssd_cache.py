"""Tests for the DRAM write buffer and read cache."""

import pytest

from repro.sim import Simulator
from repro.ssd.cache import ReadCache, WriteBuffer


class TestWriteBuffer:
    def test_reserve_up_to_capacity(self):
        sim = Simulator()
        buffer = WriteBuffer(sim, capacity_units=2)
        assert buffer.reserve().triggered
        assert buffer.reserve().triggered
        stalled = buffer.reserve()
        assert not stalled.triggered
        assert buffer.is_full
        assert buffer.stall_count == 1

    def test_flush_frees_slot_to_oldest_waiter(self):
        sim = Simulator()
        buffer = WriteBuffer(sim, capacity_units=1)
        buffer.reserve()
        buffer.insert(7)
        first_waiter = buffer.reserve()
        second_waiter = buffer.reserve()
        buffer.next_dirty()  # flusher picks it up
        buffer.flushed(7)
        assert first_waiter.triggered and not second_waiter.triggered

    def test_contains_tracks_residency(self):
        sim = Simulator()
        buffer = WriteBuffer(sim, capacity_units=4)
        buffer.reserve()
        buffer.insert(3)
        assert buffer.contains(3)
        buffer.flushed(3)
        assert not buffer.contains(3)

    def test_duplicate_lpn_refcounted(self):
        sim = Simulator()
        buffer = WriteBuffer(sim, capacity_units=4)
        for _ in range(2):
            buffer.reserve()
            buffer.insert(3)
        buffer.flushed(3)
        assert buffer.contains(3)  # second copy still resident
        buffer.flushed(3)
        assert not buffer.contains(3)

    def test_dirty_queue_is_fifo(self):
        sim = Simulator()
        buffer = WriteBuffer(sim, capacity_units=4)
        for lpn in (5, 6, 7):
            buffer.reserve()
            buffer.insert(lpn)
        assert buffer.next_dirty().value == 5
        assert buffer.next_dirty().value == 6
        assert buffer.pending_flush == 1

    def test_flushed_without_insert_rejected(self):
        sim = Simulator()
        buffer = WriteBuffer(sim, capacity_units=2)
        with pytest.raises(RuntimeError):
            buffer.flushed(9)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            WriteBuffer(Simulator(), capacity_units=0)


class TestReadCache:
    def test_disabled_cache_never_hits(self):
        cache = ReadCache(capacity_units=0)
        assert not cache.enabled
        cache.insert(1, ready_at=0)
        assert cache.lookup(1) is None

    def test_hit_returns_ready_time(self):
        cache = ReadCache(capacity_units=4)
        cache.insert(1, ready_at=500)
        assert cache.lookup(1) == 500
        assert cache.hits == 1

    def test_lru_eviction(self):
        cache = ReadCache(capacity_units=2)
        cache.insert(1, 0)
        cache.insert(2, 0)
        cache.lookup(1)  # touch 1 -> 2 is now LRU
        cache.insert(3, 0)
        assert cache.lookup(2) is None
        assert cache.lookup(1) is not None

    def test_hit_rate(self):
        cache = ReadCache(capacity_units=4)
        cache.insert(1, 0)
        cache.lookup(1)
        cache.lookup(2)
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_stream_detector_needs_three_sequential(self):
        cache = ReadCache(capacity_units=16, prefetch_ahead=4)
        assert cache.note_access(10) == []
        assert cache.note_access(11) == []
        wanted = cache.note_access(12)
        assert wanted == [13, 14, 15, 16]

    def test_stream_detector_resets_on_random(self):
        cache = ReadCache(capacity_units=16, prefetch_ahead=4)
        cache.note_access(10)
        cache.note_access(11)
        assert cache.note_access(50) == []
        assert cache.note_access(51) == []

    def test_prefetch_skips_cached_units(self):
        cache = ReadCache(capacity_units=16, prefetch_ahead=3)
        cache.insert(13, 0)
        cache.note_access(10)
        cache.note_access(11)
        assert cache.note_access(12) == [14, 15]

    def test_no_prefetch_without_depth(self):
        cache = ReadCache(capacity_units=16, prefetch_ahead=0)
        cache.note_access(10)
        cache.note_access(11)
        assert cache.note_access(12) == []
