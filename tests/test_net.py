"""Tests for the network link and the NBD server-client system."""

import pytest

from repro.net import NbdServerKind, NbdSystem, NetworkLink
from repro.sim import Simulator
from repro.ssd import SsdDevice
from repro.ssd.device import IoOp
from tests.test_ssd_device import tiny_config


class TestNetworkLink:
    def test_wire_time_from_rate(self):
        link = NetworkLink(Simulator(), mbps=1000, propagation_ns=500)
        assert link.wire_ns(1000) == 1000

    def test_delivery_includes_propagation(self):
        link = NetworkLink(Simulator(), mbps=1000, propagation_ns=500)
        start, delivered = link.send_to_server(1000)
        assert start == 0
        assert delivered == 1500

    def test_directions_are_independent(self):
        link = NetworkLink(Simulator(), mbps=1000, propagation_ns=0)
        link.send_to_server(10_000)
        _, reply = link.send_to_client(1000)
        assert reply == 1000  # not blocked by the other direction

    def test_same_direction_serializes(self):
        link = NetworkLink(Simulator(), mbps=1000, propagation_ns=0)
        link.send_to_server(1000)
        start, _ = link.send_to_server(1000)
        assert start == 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkLink(Simulator(), mbps=0)


def run_nbd_io(server: NbdServerKind, op: IoOp, count: int = 25, nbytes: int = 4096):
    sim = Simulator()
    device = SsdDevice(sim, tiny_config())
    # Leave erased headroom so GC noise does not blur the comparison.
    device.precondition(0.7)
    nbd = NbdSystem(sim, device, server=server)
    latencies = []

    def flow():
        for index in range(count):
            latency = yield from nbd.sync_io(op, (index % 32) * 4096, nbytes)
            latencies.append(latency)

    process = sim.process(flow())
    sim.run_until_event(process)
    assert process.triggered
    return sum(latencies) / len(latencies), nbd


class TestNbdSystem:
    def test_read_crosses_network_and_device(self):
        mean, nbd = run_nbd_io(NbdServerKind.KERNEL, IoOp.READ)
        # network RTT + server + device: tens of microseconds.
        assert 20_000 < mean < 120_000
        assert nbd.requests == 25
        assert nbd.link.messages == 50  # request + reply per I/O

    def test_spdk_server_reduces_read_latency_a_lot(self):
        kernel_mean, _ = run_nbd_io(NbdServerKind.KERNEL, IoOp.READ)
        spdk_mean, _ = run_nbd_io(NbdServerKind.SPDK, IoOp.READ)
        reduction = 1.0 - spdk_mean / kernel_mean
        # Paper Fig. 23: ~39% for reads.
        assert 0.25 < reduction < 0.55

    def test_spdk_server_barely_helps_writes(self):
        kernel_mean, _ = run_nbd_io(NbdServerKind.KERNEL, IoOp.WRITE)
        spdk_mean, _ = run_nbd_io(NbdServerKind.SPDK, IoOp.WRITE)
        reduction = 1.0 - spdk_mean / kernel_mean
        # Paper Fig. 23: under ~5% for writes.
        assert reduction < 0.15
        assert spdk_mean < kernel_mean  # still a (small) win

    def test_write_payload_travels_to_server(self):
        """A 64 KB write serializes its payload client->server; a 64 KB
        read serializes it server->client."""
        write_mean, _ = run_nbd_io(NbdServerKind.KERNEL, IoOp.WRITE, nbytes=65536)
        small_write_mean, _ = run_nbd_io(NbdServerKind.KERNEL, IoOp.WRITE, nbytes=4096)
        assert write_mean > small_write_mean + 40_000  # ~60KB more wire time

    def test_server_cpu_attributed_by_kind(self):
        _, kernel_nbd = run_nbd_io(NbdServerKind.KERNEL, IoOp.READ)
        assert kernel_nbd.accounting.cycles_by_module().get("nbd-server", 0) > 0
        _, spdk_nbd = run_nbd_io(NbdServerKind.SPDK, IoOp.READ)
        assert spdk_nbd.accounting.cycles_by_module().get("spdk-nbd", 0) > 0
