"""Cross-cutting property-based tests on core invariants.

These complement the per-module suites with randomized adversaries:
flash timelines must never double-book, the power integrator must never
dip below idle, NVMe rings must stay FIFO under arbitrary interleaving,
and the pattern generator must cover its region.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.flash import FlashDie, FlashTiming
from repro.flash.chip import OpKind
from repro.nvme import CompletionQueue, NvmeCommand, Opcode, StatusCode, SubmissionQueue
from repro.sim import Simulator
from repro.ssd.power import PowerMeter, PowerParams
from repro.workloads.patterns import make_pattern

PLAIN = FlashTiming("plain", 3_000, 100_000, 1_000_000, bus_mbps=1200)


class TestFlashTimelineProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.sampled_from(["read", "program", "erase"]), min_size=1, max_size=40
        )
    )
    def test_property_fifo_ops_never_overlap(self, ops):
        sim = Simulator()
        die = FlashDie(sim, PLAIN)
        intervals = [getattr(die, op)() for op in ops]
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2
        assert die.free_at == intervals[-1][1]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=200_000), max_size=20))
    def test_property_suspended_reads_never_overlap_each_other(self, gaps):
        """Reads injected at arbitrary instants during a program must be
        served in non-overlapping windows and the program must end after
        every read."""
        sim = Simulator()
        timing = PLAIN.with_overrides(max_suspends_per_op=100)
        die = FlashDie(sim, timing, allow_suspend=True)
        intervals = []
        die.observer = lambda kind, s, e: intervals.append((kind, s, e))
        die.observer = None  # observer set post-init is not supported; use returns
        _, program_end0 = die.program()
        reads = []
        t = 0
        for gap in gaps:
            t += gap
            if t >= program_end0:
                break
            sim.run(until=t)
            reads.append(die.read())
        reads.sort()
        for (s1, e1), (s2, e2) in zip(reads, reads[1:]):
            assert e1 <= s2
        if reads:
            assert die.free_at >= max(e for _, e in reads)


class TestPowerProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(list(OpKind)),
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=1, max_value=5_000),
            ),
            max_size=30,
        )
    )
    def test_property_power_never_below_idle(self, ops):
        sim = Simulator()
        meter = PowerMeter(sim, PowerParams(idle_w=3.8))
        for kind, start, duration in ops:
            meter.observe_op(kind, start, start + duration)
        sim.run()
        values = meter.series.values
        if len(values):
            assert (values >= 3.8 - 1e-9).all()
        assert meter.instantaneous_watts() == pytest.approx(3.8)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=20))
    def test_property_average_bounded_by_peak(self, n_ops):
        sim = Simulator()
        params = PowerParams(idle_w=4.0, read_op_w=0.5)
        meter = PowerMeter(sim, params)
        for index in range(n_ops):
            meter.observe_op(OpKind.READ, index * 100, index * 100 + 100)
        sim.run(until=n_ops * 100)
        average = meter.average_watts(n_ops * 100)
        assert 4.0 - 1e-9 <= average <= 4.0 + 0.5 * n_ops


class TestNvmeRingProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_property_sq_is_fifo_under_any_interleaving(self, pushes):
        """Random push/fetch interleavings preserve order and never
        lose or duplicate a command."""
        sq = SubmissionQueue(8)
        next_cid = 0
        expected = []
        fetched = []
        for do_push in pushes:
            if do_push and not sq.is_full:
                sq.push(NvmeCommand.from_bytes(next_cid, Opcode.READ, 0, 4096))
                expected.append(next_cid)
                next_cid += 1
            elif not sq.is_empty:
                fetched.append(sq.fetch().cid)
        while not sq.is_empty:
            fetched.append(sq.fetch().cid)
        assert fetched == expected

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=300))
    def test_property_cq_phase_detection_across_wraps(self, count):
        cq = CompletionQueue(4)
        for cid in range(count):
            assert cq.peek() is None  # nothing stale ever shows up
            cq.post(cid, 0, StatusCode.SUCCESS)
            entry = cq.reap()
            assert entry is not None and entry.cid == cid


class TestPatternProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_property_sequential_covers_whole_region(self, nchunks, seed):
        pattern = make_pattern("read", 4096, nchunks * 4096, seed=seed)
        offsets = {offset for _, offset in pattern.take(nchunks)}
        assert offsets == {i * 4096 for i in range(nchunks)}

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_property_mixed_stream_is_reproducible(self, seed):
        a = list(
            make_pattern("randrw", 4096, 1 << 20, seed=seed, write_fraction=0.3).take(64)
        )
        b = list(
            make_pattern("randrw", 4096, 1 << 20, seed=seed, write_fraction=0.3).take(64)
        )
        assert a == b


class TestDeviceLevelProperties:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_property_read_your_writes_mapping(self, seed):
        """After any overwrite storm, every written LBA maps to exactly
        one valid physical page (no lost or duplicated data)."""
        from repro.ssd import SsdDevice
        from tests.test_ssd_device import tiny_config

        sim = Simulator()
        device = SsdDevice(sim, tiny_config(), seed=seed % 1000 + 1)
        device.precondition(1.0)
        rng = np.random.default_rng(seed)
        pages = device.logical_pages
        for _ in range(pages):
            device.write(int(rng.integers(0, pages)) * 4096, 4096)
        sim.run()
        device.ftl.mapping.check_invariants()
        seen = set()
        for lpn in range(pages):
            ppa = device.ftl.read_ppa(lpn)
            assert ppa is not None
            assert ppa not in seen
            seen.add(ppa)
