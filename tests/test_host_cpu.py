"""Tests for the CPU core/topology model and the sparkline renderer."""

import pytest

from repro.core.metrics import FigureResult, Series
from repro.core.report import render_sparkline, render_timeseries
from repro.host import CpuSpec, CpuTopology, ExecMode
from repro.sim import Simulator


class TestCpuSpec:
    def test_paper_testbed_defaults(self):
        spec = CpuSpec()
        assert spec.model == "i7-8700"
        assert spec.cores == 6
        assert spec.frequency_ghz == 4.6

    def test_cycle_conversions_round_trip(self):
        spec = CpuSpec(frequency_ghz=4.0)
        assert spec.cycles_of(1000) == 4000
        assert spec.ns_of(4000) == pytest.approx(1000)

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuSpec(cores=0)
        with pytest.raises(ValueError):
            CpuSpec(frequency_ghz=0)


class TestTopology:
    def test_allocation_pins_lowest_free_core(self):
        topology = CpuTopology(Simulator(), CpuSpec(cores=2))
        first = topology.allocate("fio-0")
        second = topology.allocate("fio-1")
        assert (first.index, second.index) == (0, 1)
        assert first.owner == "fio-0"

    def test_oversubscription_rejected(self):
        topology = CpuTopology(Simulator(), CpuSpec(cores=1))
        topology.allocate("a")
        with pytest.raises(RuntimeError):
            topology.allocate("b")

    def test_release_recycles_core(self):
        topology = CpuTopology(Simulator(), CpuSpec(cores=1))
        core = topology.allocate("a")
        topology.release(core)
        assert topology.allocate("b").index == 0

    def test_double_pin_rejected(self):
        topology = CpuTopology(Simulator(), CpuSpec(cores=1))
        core = topology.allocate("a")
        with pytest.raises(RuntimeError):
            core.pin("b")

    def test_busy_cycles_from_accounting(self):
        topology = CpuTopology(Simulator(), CpuSpec(cores=1, frequency_ghz=2.0))
        core = topology.allocate("a")
        core.accounting.charge(500, ExecMode.KERNEL, "vfs", "syscall")
        assert core.busy_cycles() == 1000
        assert core.busy_cycles(ExecMode.USER) == 0

    def test_total_utilization_averages_cores(self):
        topology = CpuTopology(Simulator(), CpuSpec(cores=2))
        busy = topology.allocate("busy")
        topology.allocate("idle")
        busy.accounting.charge(1000, ExecMode.USER, "fio", "x")
        assert topology.total_utilization(1000) == pytest.approx(0.5)

    def test_busiest_core(self):
        topology = CpuTopology(Simulator(), CpuSpec(cores=3))
        hot = topology.cores[2]
        hot.accounting.charge(10, ExecMode.USER, "fio", "x")
        assert topology.busiest_core() is hot


class TestSparkline:
    def test_monotonic_series_renders_ramp(self):
        line = render_sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 8

    def test_flat_series(self):
        assert render_sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert render_sparkline([]) == ""

    def test_long_series_bucketed(self):
        line = render_sparkline(list(range(1000)), width=40)
        assert len(line) == 40
        assert line[0] == "▁" and line[-1] == "█"

    def test_render_timeseries_contains_sparkline(self):
        figure = FigureResult(
            figure_id="fx",
            title="demo",
            x_label="t",
            y_label="v",
            series=(
                Series.from_points("lat", list(range(5)), [1, 1, 1, 9, 9], "us"),
            ),
        )
        text = render_timeseries(figure)
        assert "fx" in text and "lat" in text
        assert "█" in text and "▁" in text
        assert "9.00 us" in text
