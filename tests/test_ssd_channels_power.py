"""Tests for the channel fabric and the power meter."""

import pytest

from repro.flash.chip import OpKind
from repro.sim import Simulator
from repro.ssd.channels import ChannelArray
from repro.ssd.power import PowerMeter, PowerParams


class TestChannelArray:
    def test_transfer_time_from_rate(self):
        sim = Simulator()
        channels = ChannelArray(sim, 4, mbps=800)
        # 800 MB/s == 0.8 bytes/ns -> 4096 B = 5120 ns.
        assert channels.transfer_ns(4096) == 5120

    def test_transfers_serialize_per_channel(self):
        sim = Simulator()
        channels = ChannelArray(sim, 2, mbps=1000)
        first = channels.transfer(0, 1000)
        second = channels.transfer(0, 1000)
        other = channels.transfer(1, 1000)
        assert first == (0, 1000)
        assert second == (1000, 2000)
        assert other == (0, 1000)  # independent channel

    def test_channel_of_die_wraps(self):
        channels = ChannelArray(Simulator(), 4, mbps=800)
        assert channels.channel_of_die(5) == 1

    def test_not_before(self):
        channels = ChannelArray(Simulator(), 1, mbps=1000)
        assert channels.transfer(0, 500, not_before=2000) == (2000, 2500)

    def test_observer_called(self):
        sim = Simulator()
        seen = []
        channels = ChannelArray(sim, 1, 1000, observer=lambda s, e: seen.append((s, e)))
        channels.transfer(0, 1000)
        assert seen == [(0, 1000)]

    def test_utilization(self):
        sim = Simulator()
        channels = ChannelArray(sim, 2, mbps=1000)
        channels.transfer(0, 500)
        assert channels.utilization(1000) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelArray(Simulator(), 0, 800)
        with pytest.raises(ValueError):
            ChannelArray(Simulator(), 1, 0)
        with pytest.raises(ValueError):
            ChannelArray(Simulator(), 1, 800).transfer(1, 10)


class TestPowerMeter:
    def make_meter(self, dies_per_op=1):
        sim = Simulator()
        params = PowerParams(
            idle_w=4.0, read_op_w=0.5, program_op_w=1.0, erase_op_w=2.0,
            transfer_w=0.25,
        )
        return sim, PowerMeter(sim, params, dies_per_op=dies_per_op)

    def test_idle_power(self):
        sim, meter = self.make_meter()
        sim.run(until=1000)
        assert meter.average_watts(1000) == pytest.approx(4.0)

    def test_single_read_op(self):
        sim, meter = self.make_meter()
        meter.observe_op(OpKind.READ, 0, 500)
        sim.run(until=1000)
        # 500ns at 4.5W, 500ns at 4.0W.
        assert meter.average_watts(1000) == pytest.approx(4.25)

    def test_super_channel_pair_counts_twice(self):
        sim, meter = self.make_meter(dies_per_op=2)
        meter.observe_op(OpKind.PROGRAM, 0, 1000)
        sim.run(until=1000)
        assert meter.average_watts(1000) == pytest.approx(4.0 + 2.0)

    def test_overlapping_ops_add(self):
        sim, meter = self.make_meter()
        meter.observe_op(OpKind.READ, 0, 1000)
        meter.observe_op(OpKind.ERASE, 0, 1000)
        meter.observe_transfer(0, 1000)
        sim.run(until=1000)
        assert meter.average_watts(1000) == pytest.approx(4.0 + 0.5 + 2.0 + 0.25)

    def test_instantaneous_power_tracks_transitions(self):
        sim, meter = self.make_meter()
        meter.observe_op(OpKind.PROGRAM, 100, 200)
        sim.run(until=150)
        assert meter.instantaneous_watts() == pytest.approx(5.0)
        sim.run(until=250)
        assert meter.instantaneous_watts() == pytest.approx(4.0)

    def test_zero_length_op_ignored(self):
        sim, meter = self.make_meter()
        meter.observe_op(OpKind.READ, 100, 100)
        sim.run()
        assert meter.instantaneous_watts() == pytest.approx(4.0)

    def test_series_records_transitions(self):
        sim, meter = self.make_meter()
        meter.observe_op(OpKind.READ, 0, 100)
        sim.run()
        assert len(meter.series) == 2
