"""simflow: dims lattice, CFG shape, call-graph summaries, cache,
SARIF export, baselines, and a mutation test seeding a real unit bug.

Flow-rule *fixtures* (per-code positive/negative snippets) live in
test_lint.py next to the syntactic rule fixtures; this file tests the
machinery those rules are built on.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.cache import LintCache
from repro.lint.engine import lint_paths, lint_source
from repro.lint.flow.callgraph import (
    FunctionInfo,
    Project,
    annotation_dim,
    module_dotted_name,
)
from repro.lint.flow.cfg import build_cfg, is_generator
from repro.lint.flow.dims import (
    ADDR_LOGICAL,
    ADDR_PHYSICAL,
    DIMLESS,
    SIZE_BYTES,
    SIZE_PAGES,
    TIME_NS,
    TIME_US,
    UNKNOWN,
    conflict_kind,
    dim_of_name,
    join,
    scaled_time_unit,
)
from repro.lint.rules import ImportMap
from repro.lint.sarif import to_sarif

REPO_ROOT = Path(__file__).resolve().parent.parent


def codes_of(result):
    return [d.code for d in result.diagnostics]


# ----------------------------------------------------------------------
# Dimension lattice
# ----------------------------------------------------------------------
class TestDims:
    def test_suffix_inference(self):
        # Table-driven on purpose: spelling these as direct comparisons
        # against suffix-named constants (TIME_US, SIZE_PAGES) makes the
        # linter read the constants themselves as quantities.
        cases = {
            "flush_coalesce_ns": TIME_NS,
            "mean_us": TIME_US,
            "capacity_bytes": SIZE_BYTES,
            "total_pages": SIZE_PAGES,
            "lpn": ADDR_LOGICAL,
            "prev_ppa": ADDR_PHYSICAL,
            "lpns": ADDR_LOGICAL,  # plural strips
        }
        for name, expected in cases.items():
            assert dim_of_name(name) == expected, name

    def test_thin_evidence_stays_unknown(self):
        # A lone `s` is too thin to call seconds; rates are neither unit.
        assert dim_of_name("s") == UNKNOWN
        assert dim_of_name("wall_s") == dim_of_name("elapsed_s") != UNKNOWN
        assert dim_of_name("events_per_s") == UNKNOWN
        assert dim_of_name("pages_per_block") == UNKNOWN
        assert dim_of_name("bus_mbps") == UNKNOWN

    def test_size_names_are_byte_quantities(self):
        assert dim_of_name("page_size") == SIZE_BYTES
        assert dim_of_name("nbytes") == SIZE_BYTES

    def test_scaled_time_unit_moves_along_ladder(self):
        assert scaled_time_unit("us", 1_000, multiply=True) == "ns"
        assert scaled_time_unit("ns", 1_000, multiply=False) == "us"
        assert scaled_time_unit("s", 1_000_000_000, multiply=True) == "ns"
        # Off-ladder factors do not convert.
        assert scaled_time_unit("ns", 7, multiply=False) is None
        assert scaled_time_unit("us", 1_000_000_000, multiply=False) is None

    def test_conflict_kind_families(self):
        assert conflict_kind(TIME_NS, TIME_US) == "time"
        assert conflict_kind(ADDR_LOGICAL, ADDR_PHYSICAL) == "addr"
        assert conflict_kind(TIME_NS, SIZE_BYTES) == "cross"
        assert conflict_kind(SIZE_BYTES, SIZE_PAGES) == "cross"

    def test_addr_vs_size_is_compatible(self):
        # Bounds checks (`lpn < logical_pages`) and pointer arithmetic
        # (`lpn + pages`) are idiomatic, not findings.
        assert conflict_kind(ADDR_LOGICAL, SIZE_PAGES) is None
        assert conflict_kind(SIZE_BYTES, ADDR_PHYSICAL) is None

    def test_unknown_and_dimless_never_conflict(self):
        assert conflict_kind(UNKNOWN, TIME_NS) is None
        assert conflict_kind(DIMLESS, TIME_NS) is None

    def test_join(self):
        assert join(TIME_NS, TIME_NS) == TIME_NS
        assert join(TIME_NS, DIMLESS) == TIME_NS
        assert join(TIME_NS, TIME_US) == UNKNOWN
        assert join(UNKNOWN, TIME_NS) == UNKNOWN


# ----------------------------------------------------------------------
# Control-flow graphs
# ----------------------------------------------------------------------
def fn_of(source: str):
    return ast.parse(source).body[0]


def cfg_node_at(cfg, lineno):
    for node in cfg.statement_nodes():
        if node.stmt.lineno == lineno:
            return node
    raise AssertionError(f"no CFG node at line {lineno}")


class TestCfg:
    def test_linear_body_chains_to_exit(self):
        cfg = build_cfg(fn_of("def f():\n    a = 1\n    b = 2\n"))
        assert cfg_node_at(cfg, 2).succs == {cfg_node_at(cfg, 3).index}
        assert cfg.exit.index in cfg_node_at(cfg, 3).succs

    def test_if_branches_rejoin(self):
        cfg = build_cfg(
            fn_of("def f(x):\n    if x:\n        a = 1\n    b = 2\n")
        )
        header = cfg_node_at(cfg, 2)
        join_node = cfg_node_at(cfg, 4)
        # Header reaches both the then-branch and (else-less) the join.
        assert cfg_node_at(cfg, 3).index in header.succs
        assert join_node.index in header.succs
        assert join_node.index in cfg_node_at(cfg, 3).succs

    def test_while_has_back_edge_and_break_exit(self):
        cfg = build_cfg(
            fn_of(
                "def f(c):\n"
                "    while c:\n"
                "        a = 1\n"
                "        if a:\n"
                "            break\n"
                "    b = 2\n"
            )
        )
        header = cfg_node_at(cfg, 2)
        after = cfg_node_at(cfg, 6)
        # The loop body re-enters the header (back edge via the if-tail).
        assert header.index in cfg_node_at(cfg, 4).succs
        # Break jumps straight past the loop; the header also exits.
        assert cfg_node_at(cfg, 5).succs == {after.index}
        assert after.index in header.succs

    def test_for_loop_back_edge(self):
        cfg = build_cfg(
            fn_of("def f(xs):\n    for x in xs:\n        a = x\n    b = 1\n")
        )
        header = cfg_node_at(cfg, 2)
        assert header.index in cfg_node_at(cfg, 3).succs
        assert cfg_node_at(cfg, 4).index in header.succs

    def test_try_body_may_jump_to_handler(self):
        cfg = build_cfg(
            fn_of(
                "def f():\n"
                "    try:\n"
                "        a = 1\n"
                "        b = 2\n"
                "    except ValueError:\n"
                "        c = 3\n"
                "    d = 4\n"
            )
        )
        handler = cfg_node_at(cfg, 5)
        # An exception can strike mid-body: both body statements reach
        # the handler header, and both handler and body reach the join.
        assert handler.index in cfg_node_at(cfg, 3).succs
        assert handler.index in cfg_node_at(cfg, 4).succs
        after = cfg_node_at(cfg, 7)
        assert after.index in cfg_node_at(cfg, 6).succs
        assert after.index in cfg_node_at(cfg, 4).succs

    def test_finally_on_every_path(self):
        cfg = build_cfg(
            fn_of(
                "def f():\n"
                "    try:\n"
                "        a = 1\n"
                "    except ValueError:\n"
                "        b = 2\n"
                "    finally:\n"
                "        c = 3\n"
            )
        )
        fin = cfg_node_at(cfg, 7)
        assert fin.index in cfg_node_at(cfg, 3).succs
        assert fin.index in cfg_node_at(cfg, 5).succs

    def test_with_body_is_linear(self):
        cfg = build_cfg(
            fn_of("def f(r):\n    with r:\n        a = 1\n    b = 2\n")
        )
        assert cfg_node_at(cfg, 3).index in cfg_node_at(cfg, 2).succs
        assert cfg_node_at(cfg, 4).index in cfg_node_at(cfg, 3).succs

    def test_return_goes_to_exit_only(self):
        cfg = build_cfg(
            fn_of("def f(x):\n    if x:\n        return 1\n    a = 2\n")
        )
        assert cfg_node_at(cfg, 3).succs == {cfg.exit.index}

    def test_yield_marks_node(self):
        cfg = build_cfg(
            fn_of("def f(sim):\n    a = 1\n    yield sim.ev\n    b = 2\n")
        )
        assert not cfg_node_at(cfg, 2).has_yield
        assert cfg_node_at(cfg, 3).has_yield
        assert not cfg_node_at(cfg, 4).has_yield

    def test_is_generator_ignores_nested_scopes(self):
        assert is_generator(fn_of("def f():\n    yield 1\n"))
        assert is_generator(fn_of("def f(x):\n    x = yield\n"))
        assert not is_generator(
            fn_of("def f():\n    def g():\n        yield 1\n    return g\n")
        )
        assert not is_generator(
            fn_of("def f():\n    return (lambda: (yield))\n")
        )


# ----------------------------------------------------------------------
# Call graph and summaries
# ----------------------------------------------------------------------
class FakeModule:
    def __init__(self, display, source, is_sim_layer=True):
        self.display = display
        self.tree = ast.parse(source)
        self.is_sim_layer = is_sim_layer


class TestCallgraph:
    def test_module_dotted_name(self):
        assert module_dotted_name("src/repro/ftl/core.py") == "repro.ftl.core"
        assert module_dotted_name("src/repro/ftl/__init__.py") == "repro.ftl"
        assert module_dotted_name("tests/test_x.py") == "tests.test_x"

    def test_annotation_dim_shapes(self):
        imports = ImportMap(ast.parse("from repro.units import Ns"))

        def dim(expr_src):
            return annotation_dim(ast.parse(expr_src, mode="eval").body, imports)

        assert dim("Ns") == TIME_NS
        assert dim("'Ns'") == TIME_NS
        assert dim("Optional[Ns]") == TIME_NS
        assert dim("Ns | None") == TIME_NS
        assert dim("int") == UNKNOWN

    def test_param_dims_annotation_beats_suffix(self):
        module = FakeModule(
            "src/x/ssd/m.py",
            "from repro.units import Ns\n"
            "def f(delay_us: Ns, nbytes, plain):\n    return delay_us\n",
        )
        project = Project([module])
        info = project.functions["src/x/ssd/m.py"]["f"]
        assert info.param_dims["delay_us"] == TIME_NS  # annotation wins
        assert info.param_dims["nbytes"] == SIZE_BYTES
        assert info.param_dims["plain"] == UNKNOWN

    def test_positional_param_skips_self_when_bound(self):
        module = FakeModule(
            "src/x/ssd/m.py",
            "class C:\n    def m(self, delay_ns, nbytes):\n        pass\n",
        )
        project = Project([module])
        info = project.classes["src/x/ssd/m.py"]["C"].methods["m"]
        assert info.positional_param(0, bound=True) == "delay_ns"
        assert info.positional_param(0, bound=False) == "self"

    def test_return_dim_from_name_suffix(self):
        module = FakeModule(
            "src/x/ssd/m.py", "def service_ns(x):\n    return x\n"
        )
        project = Project([module])
        assert project.functions["src/x/ssd/m.py"]["service_ns"].return_dim \
            == TIME_NS


# ----------------------------------------------------------------------
# Interprocedural findings across real module boundaries
# ----------------------------------------------------------------------
def write_tree(root: Path, files: dict) -> Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


class TestInterprocedural:
    def test_cross_module_argument_mismatch(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/pkg/ssd/timing.py": (
                    "def service_time_us(nbytes, bus_mbps):\n"
                    "    return nbytes / bus_mbps\n"
                ),
                "src/pkg/ssd/engine.py": (
                    "from pkg.ssd.timing import service_time_us\n"
                    "def step(now_ns, nbytes, bus_mbps):\n"
                    "    return now_ns + service_time_us(nbytes, bus_mbps)\n"
                ),
            },
        )
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        assert codes_of(result) == ["SIM010"]
        assert result.diagnostics[0].path == "src/pkg/ssd/engine.py"
        assert "time:ns + time:us" in result.diagnostics[0].message

    def test_cross_module_clean_when_converted(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/pkg/ssd/timing.py": (
                    "def service_time_us(nbytes, bus_mbps):\n"
                    "    return nbytes / bus_mbps\n"
                ),
                "src/pkg/ssd/engine.py": (
                    "from repro.units import us_to_ns\n"
                    "from pkg.ssd.timing import service_time_us\n"
                    "def step(now_ns, nbytes, bus_mbps):\n"
                    "    return now_ns + us_to_ns("
                    "service_time_us(nbytes, bus_mbps))\n"
                ),
            },
        )
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        assert codes_of(result) == []

    def test_return_summary_fixed_point(self, tmp_path):
        # `total` has no suffix of its own; its dim comes from the
        # callee's, one hop through the fixed point.
        write_tree(
            tmp_path,
            {
                "src/pkg/ssd/m.py": (
                    "def base_us():\n    return 5\n"
                    "def total(extra):\n    return base_us() + extra\n"
                    "def f(now_ns, extra):\n"
                    "    return now_ns + total(extra)\n"
                ),
            },
        )
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        assert codes_of(result) == ["SIM010"]


# ----------------------------------------------------------------------
# Content-hash cache
# ----------------------------------------------------------------------
class TestCache:
    FILES = {
        "src/pkg/ssd/a.py": "def f(t_ns):\n    return t_ns + 1\n",
        "src/pkg/ssd/b.py": "def g(nbytes):\n    return nbytes * 2\n",
    }

    def test_second_run_is_fully_hot(self, tmp_path):
        write_tree(tmp_path, self.FILES)
        cache_dir = tmp_path / "cache"
        cold = LintCache(cache_dir)
        first = lint_paths([tmp_path / "src"], root=tmp_path, cache=cold)
        assert cold.file_hits == 0 and not cold.flow_hot

        hot = LintCache(cache_dir)
        second = lint_paths([tmp_path / "src"], root=tmp_path, cache=hot)
        assert hot.file_hits == 2 and hot.file_misses == 0
        assert hot.flow_hot
        assert [d.to_dict() for d in first.diagnostics] == [
            d.to_dict() for d in second.diagnostics
        ]

    def test_edit_invalidates_changed_file_and_flow(self, tmp_path):
        write_tree(tmp_path, self.FILES)
        cache_dir = tmp_path / "cache"
        lint_paths(
            [tmp_path / "src"], root=tmp_path, cache=LintCache(cache_dir)
        )
        (tmp_path / "src/pkg/ssd/a.py").write_text(
            "def f(t_ns, d_us):\n    return t_ns + d_us\n"
        )
        cache = LintCache(cache_dir)
        result = lint_paths(
            [tmp_path / "src"], root=tmp_path, cache=cache
        )
        # The untouched file hits; the edited file and the flow pass
        # re-run — and the re-run sees the newly introduced bug.
        assert cache.file_hits == 1 and cache.file_misses == 1
        assert not cache.flow_hot
        assert codes_of(result) == ["SIM010"]

    def test_cached_diagnostics_round_trip(self, tmp_path):
        files = {
            "src/pkg/ssd/bad.py": "def f(a_ns, b_us):\n    return a_ns + b_us\n"
        }
        write_tree(tmp_path, files)
        cache_dir = tmp_path / "cache"
        first = lint_paths(
            [tmp_path / "src"], root=tmp_path, cache=LintCache(cache_dir)
        )
        second = lint_paths(
            [tmp_path / "src"], root=tmp_path, cache=LintCache(cache_dir)
        )
        assert codes_of(first) == codes_of(second) == ["SIM010"]
        assert first.diagnostics[0] == second.diagnostics[0]

    def test_select_runs_bypass_the_cache(self, tmp_path):
        write_tree(tmp_path, self.FILES)
        cache = LintCache(tmp_path / "cache")
        lint_paths(
            [tmp_path / "src"],
            root=tmp_path,
            select=["SIM001"],
            cache=cache,
        )
        # A partial rule set must not write (or read) full-run entries.
        assert cache.file_hits == 0 and cache.file_misses == 0
        assert not (tmp_path / "cache" / "lintcache.json").exists()

    def test_corrupt_cache_file_is_a_cold_start(self, tmp_path):
        write_tree(tmp_path, self.FILES)
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "lintcache.json").write_text("{not json")
        cache = LintCache(cache_dir)
        result = lint_paths([tmp_path / "src"], root=tmp_path, cache=cache)
        assert codes_of(result) == []
        assert cache.file_hits == 0


# ----------------------------------------------------------------------
# SARIF export
# ----------------------------------------------------------------------
class TestSarif:
    def test_document_shape(self):
        result = lint_source(
            "def f(a_ns, b_us):\n    return a_ns + b_us\n",
            "src/repro/ssd/fixture.py",
        )
        doc = to_sarif(result)
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "simlint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"SIM000", "SIM010", "SIM014"} <= rule_ids

        (entry,) = run["results"]
        assert entry["ruleId"] == "SIM010"
        location = entry["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/ssd/fixture.py"
        assert location["region"] == {"startLine": 2, "startColumn": 12}
        # ruleIndex must point back at the right rule row.
        rules = run["tool"]["driver"]["rules"]
        assert rules[entry["ruleIndex"]]["id"] == "SIM010"

    def test_clean_result_has_no_results(self):
        doc = to_sarif(lint_source("x = 1\n"))
        assert doc["runs"][0]["results"] == []
        assert json.dumps(doc)  # serializable


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
class TestBaseline:
    def findings(self):
        return lint_source(
            "def f(a_ns, b_us):\n"
            "    x = a_ns + b_us\n"
            "    y = a_ns + b_us\n"
            "    return x + y\n",
            "src/repro/ssd/fixture.py",
        ).diagnostics

    def test_round_trip_absorbs_recorded_findings(self, tmp_path):
        diags = self.findings()
        assert len(diags) == 2
        path = tmp_path / "baseline.json"
        assert write_baseline(path, diags) == 2
        kept, absorbed = apply_baseline(diags, load_baseline(path))
        assert kept == [] and absorbed == 2

    def test_counts_are_slots_not_wildcards(self, tmp_path):
        diags = self.findings()  # two identical-fingerprint findings
        path = tmp_path / "baseline.json"
        write_baseline(path, diags[:1])  # record only ONE slot
        kept, absorbed = apply_baseline(diags, load_baseline(path))
        assert absorbed == 1 and len(kept) == 1

    def test_new_findings_still_fail(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [])
        kept, absorbed = apply_baseline(self.findings(), load_baseline(path))
        assert len(kept) == 2 and absorbed == 0

    def test_malformed_baseline_is_loud(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="unsupported format"):
            load_baseline(path)
        with pytest.raises(ValueError, match="cannot read"):
            load_baseline(tmp_path / "missing.json")


# ----------------------------------------------------------------------
# Mutation test: seed a real us/ns bug, assert simflow catches it.
# ----------------------------------------------------------------------
class TestMutation:
    """The tree lints clean, so prove the rules WOULD catch a real slip:
    mutate a production call site to pass microseconds into the ns-typed
    simulator clock and require SIM010 to fire."""

    ENGINE = REPO_ROOT / "src/repro/sim/engine.py"
    CALLER = REPO_ROOT / "src/repro/kstack/completion.py"

    def lint_pair(self, tmp_path, caller_source):
        write_tree(
            tmp_path,
            {
                "src/repro/sim/engine.py": self.ENGINE.read_text(
                    encoding="utf-8"
                ),
                "src/repro/kstack/completion.py": caller_source,
            },
        )
        return lint_paths([tmp_path / "src"], root=tmp_path)

    def test_unmutated_pair_is_clean(self, tmp_path):
        result = self.lint_pair(
            tmp_path, self.CALLER.read_text(encoding="utf-8")
        )
        assert codes_of(result) == []

    def test_us_for_ns_mutation_is_caught(self, tmp_path):
        original = self.CALLER.read_text(encoding="utf-8")
        target = "yield self.sim.timeout(costs.irq_delivery_ns)"
        assert target in original, "mutation anchor moved; update the test"
        mutated = original.replace(
            target, "yield self.sim.timeout(costs.irq_delivery_us)", 1
        )
        result = self.lint_pair(tmp_path, mutated)
        assert "SIM010" in codes_of(result)
        (diag,) = [d for d in result.diagnostics if d.code == "SIM010"]
        assert diag.path == "src/repro/kstack/completion.py"
        assert "argument 'delay' of Simulator.timeout()" in diag.message
