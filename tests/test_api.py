"""Tests for the stable public facade (repro.api)."""

import dataclasses

import pytest

from repro.api import JobConfig, Testbed, device_snapshot, open_device, run_job
from repro.core.experiment import DeviceKind, StackKind
from repro.kstack.stack import KernelStack
from repro.sim import Simulator
from repro.spdk.stack import SpdkStack


class TestJobConfig:
    def test_frozen(self):
        config = JobConfig(rw="randread")
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.rw = "read"

    def test_defaults(self):
        config = JobConfig(rw="randread")
        assert config.engine == "psync"
        assert config.block_size == 4096
        assert config.iodepth == 1
        assert config.seed == 1234


class TestTestbed:
    def test_accepts_strings_and_enums(self):
        assert Testbed(device="ull").device_name == "ull"
        assert Testbed(device=DeviceKind.NVME).device_name == "nvme"
        assert Testbed(stack=StackKind.SPDK).stack_name == "spdk"

    def test_device_config_applies_overrides(self):
        base = Testbed(device="ull").device_config()
        tweaked = Testbed(
            device="ull", config_overrides=(("overprovision", 0.4),)
        ).device_config()
        assert tweaked.overprovision == 0.4
        assert tweaked.timing == base.timing

    def test_build_constructs_requested_stack(self):
        sim = Simulator()
        _, kernel = Testbed(device="ull", precondition=0.0).build(sim)
        assert isinstance(kernel, KernelStack)
        sim = Simulator()
        _, spdk = Testbed(
            device="ull", stack="spdk", precondition=0.0
        ).build(sim)
        assert isinstance(spdk, SpdkStack)

    def test_open_device_preconditions(self):
        sim = Simulator()
        device = Testbed(device="ull").open_device(sim)
        assert device.ftl.mapping.mapped_lpn_count == device.logical_pages
        sim = Simulator()
        empty = Testbed(device="ull", precondition=0.0).open_device(sim)
        assert empty.ftl.mapping.mapped_lpn_count == 0

    def test_module_level_open_device(self):
        sim = Simulator()
        device = open_device(sim, "nvme", precondition=0.0)
        assert device.config.timing.name == "planar-MLC"

    def test_run_job_returns_result_and_optionally_device(self):
        testbed = Testbed(device="ull")
        result = testbed.run_job(JobConfig(rw="randread", io_count=120))
        assert result.latency.count == 120
        result, device = testbed.run_job(
            JobConfig(rw="randread", io_count=120), want_device=True
        )
        assert device.completed_reads == 120

    def test_module_level_run_job(self):
        result = run_job(JobConfig(rw="randread", io_count=100), device="ull")
        assert result.latency.count == 100
        with pytest.raises(TypeError, match="not both"):
            run_job(
                JobConfig(rw="randread"), Testbed(device="ull"), device="ull"
            )

    def test_runs_are_reproducible(self):
        testbed = Testbed(device="ull", completion="poll")
        config = JobConfig(rw="randrw", io_count=150)
        first = testbed.run_job(config)
        second = testbed.run_job(config)
        assert first.latency.mean_ns == second.latency.mean_ns
        assert first.latency.p99999_ns == second.latency.p99999_ns

    def test_run_packages_measurement_with_snapshot(self):
        testbed = Testbed(device="ull")
        measurement = testbed.run(
            JobConfig(rw="randwrite", io_count=150), want_device=True
        )
        assert measurement.result.latency.count == 150
        assert measurement.device is not None
        assert measurement.device.erases >= 0

    def test_device_snapshot_detaches_state(self):
        sim = Simulator()
        device = Testbed(device="ull").open_device(sim)
        snap = device_snapshot(device)
        assert snap.write_amplification >= 0.0
        assert snap.gc_events == len(device.stats.gc_events)


class TestNamedDevices:
    """The redesigned facade: devices are named registry entries."""

    def test_zoo_name_runs_identically_to_preset(self):
        config = JobConfig(rw="randread", io_count=130)
        via_name = Testbed(device="zssd").run_job(config)
        via_preset = Testbed(device="ull").run_job(config)
        assert via_name.latency == via_preset.latency
        assert via_name.duration_ns == via_preset.duration_ns

    def test_spec_path_as_device(self):
        from repro.ssd.registry import DEVICES_DIR

        testbed = Testbed(device=str(DEVICES_DIR / "qlc.toml"))
        assert testbed.device_config() == Testbed(device="qlc").device_config()

    def test_device_spec_object_as_device(self):
        from repro.api import DeviceSpec, load_device_spec
        from repro.ssd.registry import DEVICES_DIR

        spec = load_device_spec(DEVICES_DIR / "tlc-multistep.toml")
        assert isinstance(spec, DeviceSpec)
        testbed = Testbed(device=spec)
        assert testbed.device_name == "tlc-multistep"
        assert testbed.device_config() == Testbed(
            device="tlc-multistep"
        ).device_config()

    def test_ssd_config_object_as_device(self):
        explicit = Testbed(device="nvme").device_config()
        testbed = Testbed(device=explicit)
        assert testbed.device_config() == explicit
        result = testbed.run_job(JobConfig(rw="randread", io_count=100))
        assert result.latency.count == 100

    def test_list_devices_exposed_on_facade(self):
        from repro.api import list_devices

        names = list_devices()
        assert "zssd" in names and "intel750" in names
        assert len(names) >= 6

    def test_unknown_device_is_a_spec_error(self):
        from repro.api import DeviceSpecError

        with pytest.raises(DeviceSpecError):
            Testbed(device="warp-drive").device_config()

    def test_spec_device_with_overrides(self):
        tweaked = Testbed(
            device="qlc", config_overrides=(("overprovision", 0.4),)
        ).device_config()
        assert tweaked.overprovision == 0.4

    def test_preset_config_shims_warn(self):
        from repro.ssd.presets import (
            build_nvme_preset,
            build_ull_preset,
            nvme_ssd_config,
            ull_ssd_config,
        )

        with pytest.warns(DeprecationWarning, match="zssd"):
            assert ull_ssd_config() == build_ull_preset()
        with pytest.warns(DeprecationWarning, match="intel750"):
            assert nvme_ssd_config() == build_nvme_preset()

    def test_shims_still_honor_overrides(self):
        from repro.ssd.presets import ull_ssd_config

        with pytest.warns(DeprecationWarning):
            config = ull_ssd_config(write_buffer_units=64)
        assert config.write_buffer_units == 64


class TestFacadeParity:
    """The facade reproduces the historical helpers bit for bit."""

    def test_sync_parity_with_legacy_helper(self):
        with pytest.warns(DeprecationWarning):
            from repro.core.experiment import run_sync_job

            legacy = run_sync_job(DeviceKind.ULL, "randread", io_count=130)
        facade = Testbed(
            device="ull", device_seed=42, stack_seed=42
        ).run_job(JobConfig(rw="randread", engine="psync", io_count=130, seed=42))
        assert legacy.latency.mean_ns == facade.latency.mean_ns
        assert legacy.latency.p99999_ns == facade.latency.p99999_ns
        assert legacy.duration_ns == facade.duration_ns

    def test_async_parity_with_legacy_helper(self):
        with pytest.warns(DeprecationWarning):
            from repro.core.experiment import run_async_job

            legacy = run_async_job(
                DeviceKind.NVME, "randread", iodepth=8, io_count=200
            )
        facade = Testbed(device="nvme", device_seed=42, stack_seed=11).run_job(
            JobConfig(rw="randread", engine="libaio", iodepth=8,
                      io_count=200, seed=42)
        )
        assert legacy.latency.mean_ns == facade.latency.mean_ns
        assert legacy.duration_ns == facade.duration_ns

    def test_spdk_parity_with_legacy_helper(self):
        with pytest.warns(DeprecationWarning):
            from repro.core.experiment import run_sync_job

            legacy = run_sync_job(
                DeviceKind.ULL, "read", io_count=130, stack=StackKind.SPDK
            )
        facade = Testbed(
            device="ull", stack="spdk", device_seed=42, stack_seed=42
        ).run_job(JobConfig(rw="read", engine="psync", io_count=130, seed=42))
        assert legacy.latency.mean_ns == facade.latency.mean_ns
