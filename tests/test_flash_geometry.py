"""Tests for flash array geometry and address mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.flash import FlashGeometry


def small_geometry() -> FlashGeometry:
    return FlashGeometry(
        channels=4,
        ways_per_channel=2,
        planes_per_die=2,
        blocks_per_plane=8,
        pages_per_block=16,
        page_size=2048,
    )


class TestDerivedSizes:
    def test_dies(self):
        assert small_geometry().dies == 8

    def test_total_blocks(self):
        geometry = small_geometry()
        assert geometry.blocks_per_die == 16
        assert geometry.total_blocks == 128

    def test_total_pages_and_capacity(self):
        geometry = small_geometry()
        assert geometry.total_pages == 128 * 16
        assert geometry.capacity_bytes == 128 * 16 * 2048

    def test_block_size(self):
        assert small_geometry().block_size == 16 * 2048

    def test_validation_rejects_zero_dimension(self):
        with pytest.raises(ValueError):
            FlashGeometry(0, 1, 1, 1, 1, 512)


class TestAddressMapping:
    def test_die_of_page_boundaries(self):
        geometry = small_geometry()
        per_die = geometry.pages_per_die
        assert geometry.die_of_page(0) == 0
        assert geometry.die_of_page(per_die - 1) == 0
        assert geometry.die_of_page(per_die) == 1
        assert geometry.die_of_page(geometry.total_pages - 1) == geometry.dies - 1

    def test_channel_of_die_wraps(self):
        geometry = small_geometry()
        assert geometry.channel_of_die(0) == 0
        assert geometry.channel_of_die(3) == 3
        assert geometry.channel_of_die(4) == 0

    def test_block_of_page(self):
        geometry = small_geometry()
        assert geometry.block_of_page(0) == 0
        assert geometry.block_of_page(15) == 0
        assert geometry.block_of_page(16) == 1

    def test_first_page_round_trip(self):
        geometry = small_geometry()
        for block in (0, 5, geometry.total_blocks - 1):
            first = geometry.first_page_of_block(block)
            assert geometry.block_of_page(first) == block
            assert geometry.page_offset_in_block(first) == 0

    def test_out_of_range_rejected(self):
        geometry = small_geometry()
        with pytest.raises(ValueError):
            geometry.die_of_page(geometry.total_pages)
        with pytest.raises(ValueError):
            geometry.first_page_of_block(-1)
        with pytest.raises(ValueError):
            geometry.channel_of_die(geometry.dies)

    @given(st.integers(min_value=0, max_value=128 * 16 - 1))
    def test_property_page_block_die_consistent(self, ppa):
        geometry = small_geometry()
        block = geometry.block_of_page(ppa)
        assert geometry.die_of_block(block) == geometry.die_of_page(ppa)
        first = geometry.first_page_of_block(block)
        assert first <= ppa < first + geometry.pages_per_block

    def test_describe_mentions_capacity(self):
        assert "MiB" in small_geometry().describe()
