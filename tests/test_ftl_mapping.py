"""Tests for the FTL mapping table, including property-based invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ftl import FtlLayout, MappingTable, PageState
from repro.ftl.mapping import UNMAPPED


def make_table(logical_fraction: float = 0.875) -> MappingTable:
    layout = FtlLayout(dies=2, blocks_per_die=4, pages_per_block=8)
    return MappingTable(layout, int(layout.total_pages * logical_fraction))


class TestBind:
    def test_first_bind(self):
        table = make_table()
        assert table.bind(0, 5) == UNMAPPED
        assert table.lookup(0) == 5
        assert table.owner(5) == 0
        assert table.state(5) is PageState.VALID

    def test_rebind_invalidates_old_page(self):
        table = make_table()
        table.bind(0, 5)
        assert table.bind(0, 9) == 5
        assert table.lookup(0) == 9
        assert table.state(5) is PageState.INVALID
        assert table.owner(5) == UNMAPPED

    def test_valid_counts_track_binds(self):
        table = make_table()
        table.bind(0, 0)
        table.bind(1, 1)
        assert table.valid_count(0) == 2
        table.bind(0, 8)  # moves to block 1, invalidates in block 0
        assert table.valid_count(0) == 1
        assert table.valid_count(1) == 1

    def test_bind_to_non_free_page_rejected(self):
        table = make_table()
        table.bind(0, 5)
        with pytest.raises(ValueError):
            table.bind(1, 5)

    def test_lpn_range_checked(self):
        table = make_table()
        with pytest.raises(ValueError):
            table.lookup(table.logical_pages)
        with pytest.raises(ValueError):
            table.bind(-1, 0)

    def test_logical_space_cannot_exceed_physical(self):
        layout = FtlLayout(dies=1, blocks_per_die=2, pages_per_block=4)
        with pytest.raises(ValueError):
            MappingTable(layout, layout.total_pages + 1)


class TestTrim:
    def test_trim_frees_mapping(self):
        table = make_table()
        table.bind(3, 7)
        assert table.trim(3) == 7
        assert table.lookup(3) == UNMAPPED
        assert table.state(7) is PageState.INVALID

    def test_trim_unmapped_is_noop(self):
        table = make_table()
        assert table.trim(3) == UNMAPPED


class TestEraseBlock:
    def test_erase_resets_pages(self):
        table = make_table()
        table.bind(0, 0)
        table.bind(0, 1)  # page 0 now invalid
        table.bind(0, 8)  # page 1 now invalid; block 0 fully invalid
        table.erase_block(0)
        assert table.state(0) is PageState.FREE
        assert table.state(1) is PageState.FREE

    def test_erase_with_valid_pages_rejected(self):
        table = make_table()
        table.bind(0, 0)
        with pytest.raises(ValueError):
            table.erase_block(0)

    def test_valid_lpns_in_block(self):
        table = make_table()
        table.bind(10, 0)
        table.bind(11, 1)
        table.bind(12, 8)
        assert sorted(table.valid_lpns_in_block(0)) == [10, 11]
        assert table.valid_lpns_in_block(1) == [12]


class TestInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["bind", "trim"]),
                st.integers(min_value=0, max_value=55),
            ),
            max_size=60,
        )
    )
    def test_property_random_operations_keep_invariants(self, operations):
        table = make_table()
        next_free = 0
        for kind, lpn in operations:
            if kind == "bind" and next_free < table.layout.total_pages:
                table.bind(lpn, next_free)
                next_free += 1
            else:
                table.trim(lpn)
        table.check_invariants()

    def test_mapped_count(self):
        table = make_table()
        table.bind(0, 0)
        table.bind(1, 1)
        table.bind(0, 2)
        assert table.mapped_lpn_count == 2
