"""Tests for workload patterns, jobs, engines, and the runner."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kstack import CompletionMethod, KernelStack
from repro.sim import Simulator
from repro.ssd import SsdDevice
from repro.ssd.device import IoOp
from repro.workloads import FioJob, make_pattern, run_job
from repro.workloads.job import IoEngineKind
from tests.test_ssd_device import tiny_config


class TestPatterns:
    def test_sequential_wraps(self):
        pattern = make_pattern("read", 4096, 3 * 4096)
        offsets = [offset for _, offset in pattern.take(4)]
        assert offsets == [0, 4096, 8192, 0]

    def test_random_is_aligned_and_in_range(self):
        pattern = make_pattern("randwrite", 4096, 64 * 4096)
        for op, offset in pattern.take(200):
            assert op is IoOp.WRITE
            assert offset % 4096 == 0
            assert 0 <= offset < 64 * 4096

    def test_seed_determinism(self):
        a = list(make_pattern("randread", 4096, 1 << 20, seed=9).take(50))
        b = list(make_pattern("randread", 4096, 1 << 20, seed=9).take(50))
        c = list(make_pattern("randread", 4096, 1 << 20, seed=10).take(50))
        assert a == b
        assert a != c

    def test_mixed_fraction(self):
        pattern = make_pattern("randrw", 4096, 1 << 20, write_fraction=0.25, seed=3)
        ops = [op for op, _ in pattern.take(2000)]
        write_share = ops.count(IoOp.WRITE) / len(ops)
        assert 0.2 < write_share < 0.3

    def test_pure_patterns_have_single_direction(self):
        reads = make_pattern("read", 4096, 1 << 20)
        assert all(op is IoOp.READ for op, _ in reads.take(20))
        writes = make_pattern("write", 4096, 1 << 20)
        assert all(op is IoOp.WRITE for op, _ in writes.take(20))

    def test_region_offset(self):
        pattern = make_pattern("read", 4096, 2 * 4096, region_offset=1 << 20)
        assert next(iter(pattern.take(1)))[1] == 1 << 20

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            make_pattern("backwards", 4096, 1 << 20)

    @given(st.integers(min_value=1, max_value=1 << 30))
    @settings(max_examples=30)
    def test_property_random_offsets_fit_region(self, region_blocks_seed):
        region = (region_blocks_seed % 1000 + 1) * 4096
        pattern = make_pattern("randread", 4096, region, seed=region_blocks_seed)
        for _, offset in pattern.take(20):
            assert 0 <= offset <= region - 4096


class TestFioJob:
    def test_defaults(self):
        job = FioJob(name="j")
        assert job.engine is IoEngineKind.PSYNC
        assert job.total_bytes == 1000 * 4096

    def test_sync_engines_require_qd1(self):
        with pytest.raises(ValueError):
            FioJob(name="j", engine=IoEngineKind.PSYNC, iodepth=4)
        with pytest.raises(ValueError):
            FioJob(name="j", engine=IoEngineKind.SPDK, iodepth=2)

    def test_block_size_must_be_sector_multiple(self):
        with pytest.raises(ValueError):
            FioJob(name="j", block_size=1000)

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            FioJob(name="j", write_fraction=1.5)


def make_kernel_stack():
    sim = Simulator()
    device = SsdDevice(sim, tiny_config())
    device.precondition(1.0)
    return sim, KernelStack(sim, device, completion=CompletionMethod.INTERRUPT)


class TestRunner:
    def test_sync_job_counts_and_latency(self):
        sim, stack = make_kernel_stack()
        job = FioJob(name="sync", rw="randread", io_count=50)
        result = run_job(sim, stack, job)
        assert result.latency.count == 50
        assert result.bytes_done == 50 * 4096
        assert result.latency.mean_us > 5
        assert result.read_latency.count == 50
        assert result.write_latency.count == 0

    def test_async_job_respects_queue_depth(self):
        sim, stack = make_kernel_stack()
        job = FioJob(
            name="async", rw="randread", io_count=200,
            engine=IoEngineKind.LIBAIO, iodepth=8,
        )
        result = run_job(sim, stack, job)
        assert result.latency.count == 200
        assert stack.driver.outstanding == 0

    def test_async_higher_qd_raises_throughput(self):
        results = {}
        for depth in (1, 8):
            sim, stack = make_kernel_stack()
            job = FioJob(
                name=f"qd{depth}", rw="randread", io_count=300,
                engine=IoEngineKind.LIBAIO, iodepth=depth,
            )
            results[depth] = run_job(sim, stack, job)
        assert results[8].bandwidth_mbps > 2.5 * results[1].bandwidth_mbps
        assert results[8].iops > 2.5 * results[1].iops

    def test_mixed_job_separates_directions(self):
        sim, stack = make_kernel_stack()
        job = FioJob(
            name="mix", rw="randrw", io_count=100, write_fraction=0.5,
            engine=IoEngineKind.LIBAIO, iodepth=4,
        )
        result = run_job(sim, stack, job)
        assert result.read_latency.count + result.write_latency.count == 100
        assert result.read_latency.count > 10
        assert result.write_latency.count > 10

    def test_timeseries_capture(self):
        sim, stack = make_kernel_stack()
        job = FioJob(name="ts", rw="write", io_count=30, capture_timeseries=True)
        result = run_job(sim, stack, job)
        assert result.timeseries is not None
        assert len(result.timeseries) == 30

    def test_power_reported(self):
        sim, stack = make_kernel_stack()
        result = run_job(sim, stack, FioJob(name="p", rw="randread", io_count=30))
        assert result.avg_power_w is not None
        assert result.avg_power_w > 3.0

    def test_cpu_utilization_available(self):
        sim, stack = make_kernel_stack()
        result = run_job(sim, stack, FioJob(name="c", rw="randread", io_count=30))
        assert 0.0 < result.cpu_utilization() <= 1.0

    def test_region_bytes_limits_span(self):
        sim, stack = make_kernel_stack()
        job = FioJob(name="r", rw="randread", io_count=100, region_bytes=8 * 4096)
        run_job(sim, stack, job)  # must not raise out-of-range
