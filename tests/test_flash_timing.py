"""Tests for flash timing presets (Table I) and transfer math."""

import pytest

from repro.flash import BICS_3D, TABLE_I, V_NAND, Z_NAND, FlashTiming


class TestTableI:
    """The paper's Table I values must be encoded exactly."""

    def test_z_nand(self):
        assert Z_NAND.read_ns == 3_000
        assert Z_NAND.program_ns == 100_000
        assert Z_NAND.layers == 48
        assert Z_NAND.die_capacity_gbit == 64
        assert Z_NAND.page_size == 2048

    def test_v_nand(self):
        assert V_NAND.read_ns == 60_000
        assert V_NAND.program_ns == 700_000
        assert V_NAND.layers == 64
        assert V_NAND.die_capacity_gbit == 512
        assert V_NAND.page_size == 16384

    def test_bics(self):
        assert BICS_3D.read_ns == 45_000
        assert BICS_3D.program_ns == 660_000
        assert BICS_3D.layers == 48
        assert BICS_3D.die_capacity_gbit == 256

    def test_z_nand_read_is_15x_faster_than_bics(self):
        # "its read latency is 15~20x shorter" (Section II-A1)
        assert 15 <= BICS_3D.read_ns / Z_NAND.read_ns <= 20
        assert 15 <= V_NAND.read_ns / Z_NAND.read_ns <= 20

    def test_z_nand_program_is_6x_faster(self):
        # tPROG shorter than BiCS/V-NAND by 6.6x and 7x
        assert BICS_3D.program_ns / Z_NAND.program_ns == pytest.approx(6.6)
        assert V_NAND.program_ns / Z_NAND.program_ns == pytest.approx(7.0)

    def test_table_contains_three_technologies(self):
        assert [t.name for t in TABLE_I] == ["BiCS", "V-NAND", "Z-NAND"]


class TestTransferMath:
    def test_transfer_time_scales_with_size(self):
        timing = FlashTiming("t", 1000, 1000, 1000, bus_mbps=1000)
        # 1000 MB/s == 1 byte/ns.
        assert timing.transfer_ns(4096) == 4096
        assert timing.transfer_ns(0) == 0

    def test_negative_transfer_rejected(self):
        with pytest.raises(ValueError):
            Z_NAND.transfer_ns(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashTiming("bad", 0, 1, 1, bus_mbps=100)
        with pytest.raises(ValueError):
            FlashTiming("bad", 1, 1, 1, bus_mbps=0)

    def test_with_overrides(self):
        fast = Z_NAND.with_overrides(read_ns=1_000)
        assert fast.read_ns == 1_000
        assert fast.program_ns == Z_NAND.program_ns
        assert Z_NAND.read_ns == 3_000  # original untouched
