"""Tests for the wall-clock self-profiling and perf-regression harness."""

import json

import pytest

from repro.__main__ import main
from repro.core.sweep import SweepEngine
from repro.perf import (
    SCHEMA,
    BenchRecord,
    PerfSession,
    bench_filename,
    compare_docs,
    load_bench,
    write_bench,
)
from repro.sim import Simulator


def make_doc(figures):
    """A synthetic bench document: {figure_id: (wall_s, events, points,
    executed)}."""
    return {
        "schema": SCHEMA,
        "date": "2026-01-01",
        "figures": {
            figure_id: BenchRecord(
                figure_id=figure_id,
                wall_s=wall_s,
                sim_events=events,
                points=points,
                executed=executed,
            ).to_dict()
            for figure_id, (wall_s, events, points, executed) in figures.items()
        },
    }


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
class TestBenchRecord:
    def test_cache_states(self):
        def record(points, executed):
            return BenchRecord("f", 1.0, 10, points=points, executed=executed)

        assert record(4, 4).cache == "cold"
        assert record(4, 0).cache == "warm"
        assert record(4, 2).cache == "mixed"
        assert record(0, 0).cache == "none"

    def test_events_per_s(self):
        assert BenchRecord("f", 2.0, 10_000).events_per_s == 5000.0
        assert BenchRecord("f", 0.0, 10_000).events_per_s == 0.0

    def test_dict_round_trip(self):
        record = BenchRecord("fig04a", 1.5, 3000, points=6, executed=6,
                             memo_hits=1, disk_hits=2)
        clone = BenchRecord.from_dict(record.to_dict())
        assert clone.to_dict() == record.to_dict()
        assert "hotspots" not in record.to_dict()  # only when recorded

    def test_hotspots_round_trip(self):
        rows = ({"site": "ssd.device:_write_flow", "events": 9, "share": 0.6},)
        record = BenchRecord("fig04a", 1.5, 3000, hotspots=rows)
        doc = record.to_dict()
        assert doc["hotspots"] == [dict(rows[0])]
        clone = BenchRecord.from_dict(doc)
        assert clone.hotspots == rows


# ----------------------------------------------------------------------
# Session
# ----------------------------------------------------------------------
class TestPerfSession:
    def test_measure_counts_sim_events(self):
        session = PerfSession(engine=SweepEngine(jobs=1))
        with session.measure("toy"):
            sim = Simulator()
            for delay in range(25):
                sim.schedule(delay, lambda: None)
            sim.run()
        record = session.records["toy"]
        assert record.sim_events >= 25
        assert record.wall_s > 0

    def test_laps_accumulate(self):
        session = PerfSession(engine=SweepEngine(jobs=1))
        mark = session.mark()
        mark = session.lap("f", mark)
        first = session.records["f"].wall_s
        session.lap("f", mark)
        assert session.records["f"].wall_s >= first

    def test_doc_shape(self):
        session = PerfSession(engine=SweepEngine(jobs=1))
        mark = session.mark()
        session.lap("figX", mark)
        doc = session.to_doc(date="2026-01-01", source="test")
        assert doc["schema"] == SCHEMA
        assert doc["date"] == "2026-01-01"
        assert doc["source"] == "test"
        assert set(doc["figures"]) == {"figX"}


# ----------------------------------------------------------------------
# Document I/O
# ----------------------------------------------------------------------
class TestBenchIo:
    def test_write_creates_parents_and_loads_back(self, tmp_path):
        doc = make_doc({"fig04a": (1.0, 1000, 2, 2)})
        target = tmp_path / "nested" / "BENCH_test.json"
        written = write_bench(doc, target)
        assert written == target
        assert load_bench(target)["figures"]["fig04a"]["sim_events"] == 1000

    def test_default_filename_pattern(self):
        name = bench_filename("20260101")
        assert name == "BENCH_20260101.json"

    def test_load_rejects_unknown_schema(self, tmp_path):
        target = tmp_path / "bad.json"
        target.write_text(json.dumps({"schema": 999}))
        with pytest.raises(ValueError):
            load_bench(target)


# ----------------------------------------------------------------------
# Comparison / gating
# ----------------------------------------------------------------------
class TestCompare:
    def test_statuses(self):
        old = make_doc({
            "ok": (10.0, 100, 2, 2),
            "slow": (10.0, 100, 2, 2),
            "fast": (10.0, 100, 2, 2),
            "cachemix": (10.0, 100, 2, 2),
            "gone": (10.0, 100, 2, 2),
        })
        new = make_doc({
            "ok": (11.0, 100, 2, 2),
            "slow": (15.0, 100, 2, 2),
            "fast": (5.0, 100, 2, 2),
            "cachemix": (1.0, 100, 2, 0),  # warm now
            "fresh": (3.0, 100, 2, 2),
        })
        comparison = compare_docs(old, new, threshold=0.30)
        status = {row.figure_id: row.status for row in comparison.rows}
        assert status == {
            "ok": "ok",
            "slow": "slower",
            "fast": "faster",
            "cachemix": "incomparable",
            "gone": "removed",
            "fresh": "added",
        }
        assert not comparison.ok
        assert [row.figure_id for row in comparison.regressions] == ["slow"]

    def test_threshold_is_configurable(self):
        old = make_doc({"f": (10.0, 100, 1, 1)})
        new = make_doc({"f": (14.0, 100, 1, 1)})
        assert not compare_docs(old, new, threshold=0.30).ok
        assert compare_docs(old, new, threshold=0.50).ok

    def test_render_mentions_every_figure(self):
        old = make_doc({"figA": (1.0, 10, 1, 1)})
        new = make_doc({"figA": (1.0, 10, 1, 1), "figB": (2.0, 10, 1, 1)})
        text = compare_docs(old, new).render()
        assert "figA" in text and "figB" in text
        assert "0 regression(s)" in text

    def test_events_per_s_delta(self):
        # Same wall, double the events: throughput doubled (+100%).
        old = make_doc({"f": (10.0, 100, 1, 1)})
        new = make_doc({"f": (10.0, 200, 1, 1)})
        comparison = compare_docs(old, new)
        (row,) = comparison.rows
        assert row.events_delta == pytest.approx(1.0)
        assert "+100%" in comparison.render()

    def test_events_delta_missing_data(self):
        old = make_doc({"f": (10.0, 0, 1, 1)})  # 0 ev/s old: no delta
        new = make_doc({"f": (10.0, 100, 1, 1)})
        (row,) = compare_docs(old, new).rows
        assert row.events_delta is None

    def test_hotspots_surface_in_render(self):
        old = make_doc({"f": (10.0, 100, 1, 1)})
        new = make_doc({"f": (10.0, 100, 1, 1)})
        new["figures"]["f"]["hotspots"] = [
            {"site": "ssd.device:_write_flow", "events": 60, "share": 0.6},
            {"site": "nvme.controller:_post_cqe", "events": 40, "share": 0.4},
        ]
        text = compare_docs(old, new).render()
        assert "top hotspot ssd.device:_write_flow (60% of events)" in text

    def test_hotspot_shift_renders_both_sides(self):
        old = make_doc({"f": (10.0, 100, 1, 1)})
        new = make_doc({"f": (10.0, 100, 1, 1)})
        old["figures"]["f"]["hotspots"] = [
            {"site": "ftl.mapping:bind", "events": 90, "share": 0.9},
        ]
        new["figures"]["f"]["hotspots"] = [
            {"site": "sim.engine:run", "events": 50, "share": 0.5},
        ]
        text = compare_docs(old, new).render()
        assert (
            "top hotspot ftl.mapping:bind (90% of events) -> "
            "sim.engine:run (50% of events)" in text
        )

    def test_unchanged_hotspot_renders_once(self):
        old = make_doc({"f": (10.0, 100, 1, 1)})
        new = make_doc({"f": (10.0, 100, 1, 1)})
        spot = [{"site": "sim.engine:run", "events": 50, "share": 0.5}]
        old["figures"]["f"]["hotspots"] = spot
        new["figures"]["f"]["hotspots"] = spot
        text = compare_docs(old, new).render()
        assert text.count("sim.engine:run") == 1


# ----------------------------------------------------------------------
# CLI gating
# ----------------------------------------------------------------------
class TestCliGate:
    def write_pair(self, tmp_path, new_wall):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(make_doc({"f": (10.0, 100, 1, 1)})))
        new.write_text(json.dumps(make_doc({"f": (new_wall, 100, 1, 1)})))
        return str(old), str(new)

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        old, new = self.write_pair(tmp_path, new_wall=20.0)
        assert main(["perf", "--compare", old, "--against", new]) == 1
        assert "slower" in capsys.readouterr().out

    def test_warn_only_exits_zero(self, tmp_path):
        old, new = self.write_pair(tmp_path, new_wall=20.0)
        code = main(["perf", "--compare", old, "--against", new, "--warn-only"])
        assert code == 0

    def test_clean_compare_exits_zero(self, tmp_path):
        old, new = self.write_pair(tmp_path, new_wall=10.5)
        assert main(["perf", "--compare", old, "--against", new]) == 0

    def test_against_requires_compare(self, tmp_path):
        new = tmp_path / "new.json"
        new.write_text(json.dumps(make_doc({})))
        assert main(["perf", "--against", str(new)]) == 2

    def test_perf_without_figures_is_usage_error(self):
        assert main(["perf"]) == 2
