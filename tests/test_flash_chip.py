"""Tests for the per-die operation model, especially suspend/resume."""

import pytest

from repro.flash import FlashDie, FlashTiming, OpKind
from repro.sim import Simulator

#: Deterministic timing (no jitter) for exact-arithmetic tests.
EXACT = FlashTiming(
    name="exact",
    read_ns=3_000,
    program_ns=100_000,
    erase_ns=1_000_000,
    bus_mbps=1200,
    suspend_ns=1_000,
    resume_ns=1_000,
)


class TestFifoBooking:
    def test_read_when_idle_starts_now(self):
        sim = Simulator()
        die = FlashDie(sim, EXACT)
        assert die.read() == (0, 3_000)

    def test_operations_queue_fifo(self):
        sim = Simulator()
        die = FlashDie(sim, EXACT)
        die.read()
        assert die.read() == (3_000, 6_000)

    def test_not_before_delays_start(self):
        sim = Simulator()
        die = FlashDie(sim, EXACT)
        assert die.read(not_before=10_000) == (10_000, 13_000)

    def test_busy_accounting(self):
        sim = Simulator()
        die = FlashDie(sim, EXACT)
        die.read()
        die.program()
        assert die.busy_ns == 103_000
        assert die.utilization(206_000) == pytest.approx(0.5)

    def test_counters(self):
        sim = Simulator()
        die = FlashDie(sim, EXACT)
        die.read()
        die.program()
        die.erase()
        assert (die.reads, die.programs, die.erases) == (1, 1, 1)


class TestSuspendResume:
    def test_read_suspends_inflight_program(self):
        sim = Simulator()
        die = FlashDie(sim, EXACT, allow_suspend=True)
        _, program_end = die.program()
        assert program_end == 100_000
        sim.schedule(50_000, lambda: None)
        sim.run()  # advance mid-program
        read_start, read_end = die.read()
        # Read starts after the suspend penalty, not after the program.
        assert read_start == 50_000 + 1_000
        assert read_end == read_start + 3_000
        assert die.suspends == 1
        # Program end pushed out by the stolen window + resume cost.
        assert die.free_at == 100_000 + (read_end - 50_000) + 1_000

    def test_read_waits_without_suspend_support(self):
        sim = Simulator()
        die = FlashDie(sim, EXACT, allow_suspend=False)
        die.program()
        sim.schedule(50_000, lambda: None)
        sim.run()
        read_start, _ = die.read()
        assert read_start == 100_000  # FIFO behind the program
        assert die.suspends == 0

    def test_erase_is_suspendable_too(self):
        sim = Simulator()
        die = FlashDie(sim, EXACT, allow_suspend=True)
        die.erase()
        sim.schedule(100_000, lambda: None)
        sim.run()
        read_start, _ = die.read()
        assert read_start == 101_000
        assert die.suspends == 1

    def test_suspend_limit_respected(self):
        sim = Simulator()
        timing = EXACT.with_overrides(max_suspends_per_op=2)
        die = FlashDie(sim, timing, allow_suspend=True)
        die.program()
        sim.schedule(10_000, lambda: None)
        sim.run()
        die.read()
        die.read()
        suspended_end = die.free_at
        die.read()  # third read must queue FIFO
        assert die.suspends == 2
        assert die.free_at == suspended_end + 3_000

    def test_no_suspend_when_program_already_finished(self):
        sim = Simulator()
        die = FlashDie(sim, EXACT, allow_suspend=True)
        die.program()
        sim.schedule(200_000, lambda: None)
        sim.run()
        read_start, _ = die.read()
        assert read_start == 200_000
        assert die.suspends == 0

    def test_no_suspend_when_work_queued_behind(self):
        sim = Simulator()
        die = FlashDie(sim, EXACT, allow_suspend=True)
        die.program()
        die.program()  # queued behind: free_at != slow op end
        sim.schedule(50_000, lambda: None)
        sim.run()
        read_start, _ = die.read()
        assert read_start == 200_000
        assert die.suspends == 0


class TestJitterAndObserver:
    def test_jitter_bounds(self):
        sim = Simulator()
        timing = EXACT.with_overrides(read_jitter=0.25)
        die = FlashDie(sim, timing)
        durations = [end - start for start, end in (die.read() for _ in range(300))]
        assert min(durations) >= 3_000 * 0.75 - 1
        assert max(durations) <= 3_000 * 1.25 + 1
        assert len(set(durations)) > 10  # actually varies

    def test_jitter_deterministic_per_seed(self):
        def run(seed):
            sim = Simulator()
            die = FlashDie(sim, EXACT.with_overrides(read_jitter=0.2), seed=seed)
            return [die.read() for _ in range(20)]

        assert run(1) == run(1)
        assert run(1) != run(2)

    def test_observer_sees_every_operation(self):
        sim = Simulator()
        seen = []
        die = FlashDie(sim, EXACT, observer=lambda kind, s, e: seen.append(kind))
        die.read()
        die.program()
        die.erase()
        assert seen == [OpKind.READ, OpKind.PROGRAM, OpKind.ERASE]

    def test_observer_sees_suspended_read(self):
        sim = Simulator()
        seen = []
        die = FlashDie(
            sim, EXACT, allow_suspend=True,
            observer=lambda kind, s, e: seen.append((kind, s, e)),
        )
        die.program()
        sim.schedule(50_000, lambda: None)
        sim.run()
        die.read()
        read_records = [r for r in seen if r[0] is OpKind.READ]
        assert len(read_records) == 1
        assert read_records[0][1] == 51_000
