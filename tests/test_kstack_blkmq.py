"""Tests for blk-mq structures and the kernel NVMe driver binding."""

import pytest

from repro.kstack import Bio, BlkMq, KernelNvmeDriver
from repro.kstack.blkmq import BioDirection
from repro.nvme import NvmeController
from repro.sim import Simulator
from repro.ssd import SsdDevice
from repro.ssd.device import IoOp
from tests.test_ssd_device import tiny_config


class TestBlkMq:
    def test_bio_validation(self):
        with pytest.raises(ValueError):
            Bio(BioDirection.READ, offset=0, nbytes=0)

    def test_submit_returns_cookie(self):
        blkmq = BlkMq(cpus=2, hw_queues=2, tags_per_queue=4)
        bio = Bio(BioDirection.READ, 0, 4096, hipri=True)
        request = blkmq.submit_bio(1, bio, now_ns=100)
        assert request.cookie.hw_queue == 1
        assert request.submit_ns == 100
        assert blkmq.request_of(request.cookie) is request

    def test_cpu_to_hw_queue_mapping_wraps(self):
        blkmq = BlkMq(cpus=4, hw_queues=2)
        assert blkmq.map_queue(0).index == 0
        assert blkmq.map_queue(3).index == 1

    def test_tags_are_recycled(self):
        blkmq = BlkMq(tags_per_queue=2)
        bio = Bio(BioDirection.WRITE, 0, 4096)
        first = blkmq.submit_bio(0, bio, 0)
        second = blkmq.submit_bio(0, bio, 0)
        with pytest.raises(RuntimeError):
            blkmq.submit_bio(0, bio, 0)
        blkmq.complete(first.cookie)
        third = blkmq.submit_bio(0, bio, 0)  # reuses the freed tag
        assert third.cookie.tag == first.cookie.tag
        assert second.cookie.tag != third.cookie.tag

    def test_complete_marks_request(self):
        blkmq = BlkMq()
        request = blkmq.submit_bio(0, Bio(BioDirection.READ, 0, 512), 0)
        completed = blkmq.complete(request.cookie)
        assert completed.completed
        with pytest.raises(KeyError):
            blkmq.complete(request.cookie)

    def test_invalid_cpu_rejected(self):
        with pytest.raises(ValueError):
            BlkMq(cpus=1).map_queue(1)

    def test_software_queue_counts_traffic(self):
        blkmq = BlkMq()
        for _ in range(3):
            blkmq.submit_bio(0, Bio(BioDirection.READ, 0, 512), 0)
        assert blkmq.software_queues[0].queued == 3


class TestKernelNvmeDriver:
    def make_driver(self, interrupts=False):
        sim = Simulator()
        device = SsdDevice(sim, tiny_config())
        device.precondition(1.0)
        qpair = NvmeController(sim, device).create_queue_pair(
            interrupts_enabled=interrupts
        )
        blkmq = BlkMq()
        return sim, KernelNvmeDriver(blkmq, qpair)

    def test_submit_ties_bio_to_command(self):
        sim, driver = self.make_driver()
        request = driver.submit(0, IoOp.READ, 0, 4096, hipri=True, now_ns=0)
        assert request.blk_request.bio.hipri
        assert request.pending.command.offset_bytes == 0
        assert driver.outstanding == 1

    def test_nvme_poll_before_cqe_returns_none(self):
        sim, driver = self.make_driver()
        request = driver.submit(0, IoOp.READ, 0, 4096, now_ns=0)
        assert driver.nvme_poll(request.blk_request.cookie) is None

    def test_nvme_poll_after_cqe_completes(self):
        sim, driver = self.make_driver()
        request = driver.submit(0, IoOp.READ, 0, 4096, now_ns=0)
        sim.run_until_event(request.pending.cqe_event)
        completed = driver.nvme_poll(request.blk_request.cookie)
        assert completed is request
        assert driver.outstanding == 0
        with pytest.raises(KeyError):
            driver.nvme_poll(request.blk_request.cookie)

    def test_complete_by_cid_isr_path(self):
        sim, driver = self.make_driver(interrupts=True)
        request = driver.submit(0, IoOp.WRITE, 0, 4096, now_ns=0)
        sim.run_until_event(request.pending.cqe_event)
        completed = driver.complete_by_cid(request.pending.command.cid)
        assert completed is request
        assert request.blk_request.completed

    def test_unknown_cid_rejected(self):
        _, driver = self.make_driver()
        with pytest.raises(KeyError):
            driver.complete_by_cid(999)
