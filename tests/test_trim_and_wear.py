"""Tests for TRIM (dataset management) and wear tracking."""

import pytest

from repro.ftl import WearTracker
from repro.nvme import NvmeController, Opcode
from repro.ssd.device import IoOp
from tests.test_ssd_device import make_device, wait


class TestDeviceTrim:
    def test_trim_invalidates_mapping(self):
        sim, device = make_device()
        device.precondition(1.0)
        wait(sim, device.trim(0, 4 * 4096))
        for lpn in range(4):
            assert device.ftl.read_ppa(lpn) is None
        assert device.ftl.read_ppa(4) is not None
        assert device.completed_trims == 1

    def test_trim_is_fast(self):
        sim, device = make_device()
        device.precondition(1.0)
        request = wait(sim, device.trim(0, 65536))
        assert request.device_latency_ns < 5_000  # no flash work

    def test_read_after_trim_returns_unwritten(self):
        sim, device = make_device()
        device.precondition(1.0)
        wait(sim, device.trim(0, 4096))
        wait(sim, device.read(0, 4096))
        assert device.stats.unwritten_reads == 1

    def test_trim_reduces_gc_migration(self):
        """Trimmed pages need no migration: GC moves fewer pages."""
        import numpy as np

        def churn(trim_first: bool) -> int:
            sim, device = make_device()
            device.precondition(1.0)
            if trim_first:
                half = (device.logical_pages // 2) * 4096
                wait(sim, device.trim(0, half))
            rng = np.random.default_rng(3)
            pages = device.logical_pages
            for _ in range(pages):
                device.write(int(rng.integers(0, pages)) * 4096, 4096)
            sim.run()
            return device.ftl.gc_writes

        assert churn(trim_first=True) < churn(trim_first=False)

    def test_trim_travels_as_dsm_over_nvme(self):
        sim, device = make_device()
        device.precondition(1.0)
        qpair = NvmeController(sim, device).create_queue_pair()
        pending = qpair.submit(IoOp.TRIM, 0, 4096)
        assert pending.command.opcode is Opcode.DSM
        sim.run_until_event(pending.cqe_event)
        assert device.completed_trims == 1


class TestWearTracker:
    def test_records_erases(self):
        tracker = WearTracker(10)
        assert tracker.record_erase(3) == 1
        assert tracker.record_erase(3) == 2
        assert tracker.erases_of(3) == 2
        assert tracker.erases_of(0) == 0

    def test_summary(self):
        tracker = WearTracker(4)
        for block, count in ((0, 4), (1, 2), (2, 2)):
            for _ in range(count):
                tracker.record_erase(block)
        summary = tracker.summary()
        assert summary.total_erases == 8
        assert summary.max_erases == 4
        assert summary.min_erases == 0
        assert summary.mean_erases == 2.0
        assert summary.imbalance == 2.0

    def test_endurance_limit(self):
        tracker = WearTracker(4, endurance_limit=2)
        tracker.record_erase(1)
        assert tracker.worn_out_blocks() == []
        tracker.record_erase(1)
        assert tracker.worn_out_blocks() == [1]

    def test_no_limit_means_nothing_wears_out(self):
        tracker = WearTracker(4)
        for _ in range(100):
            tracker.record_erase(0)
        assert tracker.worn_out_blocks() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            WearTracker(0)


class TestFtlWearIntegration:
    def test_gc_storm_records_wear(self):
        import numpy as np

        sim, device = make_device()
        device.precondition(1.0)
        rng = np.random.default_rng(9)
        pages = device.logical_pages
        for _ in range(pages * 2):
            device.write(int(rng.integers(0, pages)) * 4096, 4096)
        sim.run()
        summary = device.ftl.wear.summary()
        assert summary.total_erases == device.ftl.erases
        assert summary.total_erases > 0
        assert summary.imbalance >= 1.0
