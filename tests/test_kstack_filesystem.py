"""Tests for the ext4-like file-system cost model."""

import pytest

from repro.host.accounting import CpuAccounting, ExecMode
from repro.kstack.filesystem import Ext4Model, FsCosts
from repro.sim import Simulator
from repro.ssd.device import IoOp


class BlockPathRecorder:
    """Fake block path: fixed latency, records every I/O issued."""

    def __init__(self, sim, latency_ns=10_000):
        self.sim = sim
        self.latency_ns = latency_ns
        self.issued = []

    def io(self, op, offset, nbytes):
        self.issued.append((op, offset, nbytes))
        yield self.sim.timeout(self.latency_ns)
        return self.latency_ns


def make_fs(sim, costs=None, capacity=1 << 26):
    recorder = BlockPathRecorder(sim)
    fs = Ext4Model(
        sim,
        CpuAccounting(),
        recorder.io,
        capacity,
        costs=costs or FsCosts(metadata_miss_prob=0.0),
    )
    return fs, recorder


def run(sim, generator):
    process = sim.process(generator)
    sim.run_until_event(process)
    assert process.triggered
    return process.value


class TestReads:
    def test_read_issues_one_data_io(self):
        sim = Simulator()
        fs, recorder = make_fs(sim)
        latency = run(sim, fs.read(0, 4096))
        data_ios = [io for io in recorder.issued if io[0] is IoOp.READ]
        assert len(data_ios) == 1
        assert latency > recorder.latency_ns  # plus metadata CPU work

    def test_read_offsets_into_data_region(self):
        sim = Simulator()
        fs, recorder = make_fs(sim)
        run(sim, fs.read(8192, 4096))
        _, offset, _ = recorder.issued[0]
        assert offset == fs.data_base + 8192

    def test_cold_metadata_read_probability(self):
        sim = Simulator()
        fs, recorder = make_fs(
            sim, costs=FsCosts(metadata_miss_prob=0.5), capacity=1 << 26
        )
        for index in range(40):
            run(sim, fs.read(index * 4096, 4096))
        assert fs.metadata_reads > 0
        assert len(recorder.issued) == 40 + fs.metadata_reads


class TestWrites:
    def test_journal_commit_every_interval(self):
        sim = Simulator()
        costs = FsCosts(metadata_miss_prob=0.0, journal_commit_interval=4,
                        metadata_writeback_interval=1000)
        fs, recorder = make_fs(sim, costs=costs)
        for index in range(8):
            run(sim, fs.write(index * 4096, 4096))
        assert fs.journal_commits == 2
        commits = [
            io for io in recorder.issued
            if io[0] is IoOp.WRITE and io[2] == costs.journal_commit_bytes
        ]
        assert len(commits) == 2

    def test_metadata_writeback_every_interval(self):
        sim = Simulator()
        costs = FsCosts(metadata_miss_prob=0.0, journal_commit_interval=1000,
                        metadata_writeback_interval=4)
        fs, recorder = make_fs(sim, costs=costs)
        for index in range(8):
            run(sim, fs.write(index * 4096, 4096))
        assert fs.metadata_writebacks == 2

    def test_writes_cost_more_cpu_than_reads(self):
        """The Fig. 23 asymmetry: journaling + metadata make writes
        heavier on the client CPU."""
        sim = Simulator()
        fs, _ = make_fs(sim)
        read_latency = run(sim, fs.read(0, 4096))
        write_latency = run(sim, fs.write(0, 4096))
        assert write_latency > read_latency

    def test_metadata_ios_stay_in_metadata_region(self):
        sim = Simulator()
        costs = FsCosts(metadata_miss_prob=0.0, journal_commit_interval=1,
                        metadata_writeback_interval=1)
        fs, recorder = make_fs(sim, costs=costs)
        run(sim, fs.write(0, 4096))
        metadata_ios = recorder.issued[1:]  # after the data write
        assert metadata_ios
        for _, offset, _ in metadata_ios:
            assert offset < fs.data_base

    def test_cpu_charged_to_ext4_module(self):
        sim = Simulator()
        fs, _ = make_fs(sim)
        run(sim, fs.write(0, 4096))
        by_module = fs.accounting.cycles_by_module(ExecMode.KERNEL)
        assert by_module.get("ext4", 0) > 0


class TestValidation:
    def test_costs_validation(self):
        with pytest.raises(ValueError):
            FsCosts(metadata_miss_prob=1.5)
        with pytest.raises(ValueError):
            FsCosts(journal_commit_interval=0)
