"""Tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import AnyOf, Simulator
from repro.sim.process import Interrupted


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0

    def test_callbacks_run_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(30, seen.append, "c")
        sim.schedule(10, seen.append, "a")
        sim.schedule(20, seen.append, "b")
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_same_instant_is_fifo(self):
        sim = Simulator()
        seen = []
        for tag in range(5):
            sim.schedule(10, seen.append, tag)
        sim.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_clock_advances_to_callback_time(self):
        sim = Simulator()
        stamps = []
        sim.schedule(42, lambda: stamps.append(sim.now))
        sim.run()
        assert stamps == [42]
        assert sim.now == 42

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator()
        sim.schedule(5, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1, lambda: None)

    def test_run_until_stops_early_and_advances_clock(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, seen.append, "early")
        sim.schedule(100, seen.append, "late")
        sim.run(until=50)
        assert seen == ["early"]
        assert sim.now == 50
        sim.run()
        assert seen == ["early", "late"]

    def test_run_until_backwards_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=5)

    def test_step_returns_false_when_drained(self):
        assert Simulator().step() is False

    def test_pending_count(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        assert sim.pending_count == 2

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=50))
    def test_property_execution_order_is_sorted(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run()
        assert fired == sorted(delays)


class TestEvents:
    def test_succeed_delivers_value(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(99)
        assert event.triggered and event.ok
        assert event.value == 99

    def test_value_before_trigger_raises(self):
        event = Simulator().event()
        with pytest.raises(RuntimeError):
            _ = event.value

    def test_double_trigger_raises(self):
        event = Simulator().event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_propagates_exception(self):
        event = Simulator().event()
        event.fail(ValueError("boom"))
        assert event.triggered and not event.ok
        with pytest.raises(ValueError):
            _ = event.value

    def test_fail_requires_exception_instance(self):
        with pytest.raises(TypeError):
            Simulator().event().fail("not an exception")

    def test_callback_after_trigger_runs_immediately(self):
        event = Simulator().event()
        event.succeed(5)
        got = []
        event.add_callback(lambda ev: got.append(ev.value))
        assert got == [5]

    def test_timeout_fires_at_right_time(self):
        sim = Simulator()
        timeout = sim.timeout(123, value="hi")
        sim.run()
        assert sim.now == 123
        assert timeout.value == "hi"

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Simulator().timeout(-1)

    def test_any_of_first_wins(self):
        sim = Simulator()
        slow = sim.timeout(100)
        fast = sim.timeout(10)
        race = sim.any_of([slow, fast])
        sim.run_until_event(race)
        assert race.value is fast
        assert sim.now == 10

    def test_any_of_empty_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            AnyOf(sim, [])

    def test_any_of_only_fires_once(self):
        sim = Simulator()
        a, b = sim.timeout(5), sim.timeout(6)
        race = sim.any_of([a, b])
        sim.run()
        assert race.value is a  # b's later trigger is ignored


class TestProcesses:
    def test_process_waits_on_timeouts(self):
        sim = Simulator()

        def flow():
            yield sim.timeout(10)
            yield sim.timeout(5)
            return sim.now

        process = sim.process(flow())
        sim.run()
        assert process.value == 15

    def test_process_receives_event_value(self):
        sim = Simulator()
        event = sim.event()
        sim.schedule(7, event.succeed, "payload")

        def flow():
            got = yield event
            return got

        process = sim.process(flow())
        sim.run()
        assert process.value == "payload"

    def test_process_is_waitable_event(self):
        sim = Simulator()

        def inner():
            yield sim.timeout(10)
            return "inner-done"

        def outer():
            result = yield sim.process(inner())
            return result + "!"

        process = sim.process(outer())
        sim.run()
        assert process.value == "inner-done!"

    def test_requires_generator(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.process(lambda: None)

    def test_non_event_yield_fails_process(self):
        sim = Simulator()

        def bad():
            yield 42

        process = sim.process(bad())
        sim.run()
        assert process.triggered and not process.ok

    def test_exception_from_failed_event_propagates(self):
        sim = Simulator()
        event = sim.event()
        sim.schedule(1, event.fail, RuntimeError("dead"))
        caught = []

        def flow():
            try:
                yield event
            except RuntimeError as exc:
                caught.append(str(exc))
            return None

        sim.process(flow())
        sim.run()
        assert caught == ["dead"]

    def test_interrupt_wakes_process(self):
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield sim.timeout(1000)
            except Interrupted as exc:
                log.append(exc.cause)
            return None

        process = sim.process(sleeper())
        sim.schedule(10, process.interrupt, "wakeup")
        sim.run()
        assert log == ["wakeup"]
        assert sim.now < 1000 or sim.now == 1000  # timeout may still be queued

    def test_interrupt_finished_process_raises(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(1)

        process = sim.process(quick())
        sim.run()
        with pytest.raises(RuntimeError):
            process.interrupt()

    def test_ready_event_chain_does_not_recurse(self):
        sim = Simulator()

        def spinner():
            for _ in range(5000):  # would blow the stack if recursive
                event = sim.event()
                event.succeed()
                yield event
            return "ok"

        process = sim.process(spinner())
        sim.run()
        assert process.value == "ok"

    def test_two_processes_interleave(self):
        sim = Simulator()
        order = []

        def worker(name, period):
            for _ in range(3):
                yield sim.timeout(period)
                order.append((name, sim.now))

        sim.process(worker("fast", 10))
        sim.process(worker("slow", 25))
        sim.run()
        assert order == [
            ("fast", 10), ("fast", 20), ("slow", 25),
            ("fast", 30), ("slow", 50), ("slow", 75),
        ]
