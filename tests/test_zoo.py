"""Tests for the device zoo and the zoo-latency figure.

Physics smoke checks across every shipped device: each zoo member must
simulate cleanly and land in a physically sensible latency ordering
(ULL Z-NAND below planar MLC below QLC for reads; buffered writes fast
everywhere).
"""

from repro.core.figures_zoo import zoo_latency, zoo_sweep
from repro.core.sweep import point_cache_key
from repro.core.figures_zoo import zoo_points
from repro.ssd.registry import list_devices


class TestZooSweep:
    def test_every_device_runs_both_workloads(self):
        results = zoo_sweep(("randread", "randwrite"), io_count=120)
        devices = list_devices()
        assert set(results) == {
            (d, rw) for d in devices for rw in ("randread", "randwrite")
        }
        for measurement in results.values():
            assert measurement.result.latency.count > 0
            assert measurement.result.latency.mean_ns > 0

    def test_read_latency_ordering_is_physical(self):
        results = zoo_sweep(("randread",), io_count=200)
        mean_us = {
            device: results[(device, "randread")].result.latency.mean_us
            for device in list_devices()
        }
        # ULL Z-NAND reads are an order of magnitude under planar MLC,
        # which in turn beats QLC's long sensing.
        assert mean_us["zssd"] < mean_us["planar-mlc"] < mean_us["qlc"]
        assert mean_us["zssd"] < mean_us["intel750"]
        # The persistent-memory-style device has the shortest read path.
        assert mean_us["no-gc-pm"] <= mean_us["zssd"]

    def test_buffered_writes_fast_everywhere(self):
        results = zoo_sweep(("randwrite",), io_count=120)
        for device in list_devices():
            mean_us = results[(device, "randwrite")].result.latency.mean_us
            # Write buffers absorb 4KB randwrite at qd1 on every device.
            assert mean_us < 100.0, device

    def test_zoo_points_have_distinct_cache_keys(self):
        points = zoo_points(("randread",), io_count=100)
        keys = {point_cache_key(p) for p in points}
        assert len(keys) == len(points) == len(list_devices())

    def test_device_subset_selection(self):
        results = zoo_sweep(
            ("randread",), io_count=100, devices=("zssd", "qlc")
        )
        assert set(results) == {("zssd", "randread"), ("qlc", "randread")}


class TestZooFigure:
    def test_zoo_latency_figure_shape(self):
        result = zoo_latency(io_count=120)
        assert result.figure_id == "zoo-latency"
        devices = list_devices()
        labels = {series.label for series in result.series}
        assert {"RndRd mean", "RndRd p99", "RndWr mean", "RndWr p99"} <= labels
        for series in result.series:
            assert list(series.x) == list(devices)
            for device in devices:
                assert series.value_at(device) > 0

    def test_p99_at_least_mean(self):
        result = zoo_latency(io_count=120)
        for rw in ("RndRd", "RndWr"):
            mean = result.get(f"{rw} mean")
            p99 = result.get(f"{rw} p99")
            for device in mean.x:
                assert p99.value_at(device) >= mean.value_at(device) * 0.99
