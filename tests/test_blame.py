"""Tests for wait-for blame attribution (repro.obs.blame).

Covers the parsing helpers, the top-K outlier reservoir, the
conservation invariant on real figure runs with faults enabled, the
serial/parallel absorb byte-identity, SLO monitoring, and the
``python -m repro blame`` CLI surface.
"""

import json
import pickle

import pytest

from repro.__main__ import main
from repro.api import JobConfig, Testbed
from repro.core.figures import run_figure
from repro.core.runners import config_point
from repro.core.sweep import ExperimentSpec, SweepEngine
from repro.obs import (
    JSONL_SCHEMA,
    BlameConfig,
    BlameRecorder,
    Observability,
    SloSpec,
    WaitEdge,
    blame_report_html,
    blame_table,
    format_ns,
    parse_duration_ns,
    trace_jsonl_lines,
    verify_blame_conservation,
    write_trace_jsonl,
)
from repro.obs.blame import DEFAULT_TOP, union_ns
from repro.sim import engine as sim_engine

#: Small-device overrides that force GC within ~2 ms of simulated time
#: (same shape as tests/test_obs_telemetry.py).
GC_OVERRIDES = (
    ("channels", 1),
    ("ways_per_channel", 2),
    ("blocks_per_die", 16),
    ("pages_per_block", 32),
    ("write_buffer_units", 32),
)


def gc_point(io_count=400, key="gc", rw="randwrite", **extra):
    return config_point(
        "ull",
        rw,
        io_count=io_count,
        config_overrides=GC_OVERRIDES,
        want_device=True,
        key=key,
        **extra,
    )


def blame_bundle(**config):
    return Observability(blame=BlameConfig(**config))


def run_small_job(rw="randread", io_count=200):
    """One real stack run; returns (JobResult, sim events executed)."""
    before = sim_engine.events_executed_total
    result, _ = Testbed(device="ull").run_job(
        JobConfig(rw=rw, engine="psync", io_count=io_count), want_device=True
    )
    return result, sim_engine.events_executed_total - before


# ----------------------------------------------------------------------
# Parsing helpers
# ----------------------------------------------------------------------
class TestParseDuration:
    def test_units(self):
        assert parse_duration_ns("150us") == 150_000
        assert parse_duration_ns("1.5ms") == 1_500_000
        assert parse_duration_ns("2s") == 2_000_000_000
        assert parse_duration_ns("500ns") == 500
        assert parse_duration_ns("750") == 750  # bare = ns

    def test_rejects_nonpositive_and_garbage(self):
        for bad in ("0us", "-5ms", "", "fast", "10 parsecs"):
            with pytest.raises(ValueError):
                parse_duration_ns(bad)

    def test_format_round_trips_magnitudes(self):
        assert format_ns(500) == "500ns"
        assert "us" in format_ns(150_000)
        assert "ms" in format_ns(1_500_000)
        assert format_ns(2_000_000_000).endswith("s")


class TestSloSpec:
    def test_parse_full(self):
        spec = SloSpec.parse("read:150us@0.999")
        assert spec.op == "read"
        assert spec.threshold_ns == 150_000
        assert spec.objective == 0.999

    def test_parse_percent_objective(self):
        assert SloSpec.parse("write:1ms@99.5%").objective == pytest.approx(0.995)

    def test_objective_defaults(self):
        assert SloSpec.parse("*:200us").objective == 0.999

    def test_wildcard_matches_everything(self):
        spec = SloSpec.parse("*:200us")
        assert spec.matches("read") and spec.matches("write")
        assert not SloSpec.parse("read:200us").matches("write")

    def test_parse_errors(self):
        for bad in ("read", "read:", ":150us", "read:150us@2", "read:0us"):
            with pytest.raises(ValueError):
                SloSpec.parse(bad)

    def test_equality_and_hash(self):
        a = SloSpec.parse("read:150us@0.999")
        b = SloSpec.parse("read:150us@0.999")
        assert a == b and hash(a) == hash(b)
        assert a != SloSpec.parse("read:151us@0.999")


class TestBlameConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="reservoir"):
            BlameConfig(top=0)
        with pytest.raises(ValueError, match="period"):
            BlameConfig(period_ns=0)

    def test_params_round_trip(self):
        config = BlameConfig(
            top=7,
            slos=(SloSpec.parse("read:150us"), SloSpec.parse("*:1ms@99%")),
            period_ns=5_000,
        )
        rebuilt = BlameConfig.from_params(config.to_params())
        assert rebuilt.top == 7
        assert rebuilt.period_ns == 5_000
        assert rebuilt.slos == config.slos

    def test_config_pickles(self):
        config = BlameConfig(slos=(SloSpec.parse("read:150us"),))
        clone = pickle.loads(pickle.dumps(config))
        assert clone.slos == config.slos


# ----------------------------------------------------------------------
# Union / reservoir mechanics
# ----------------------------------------------------------------------
def _edge(start, end, resource="r", holder="h"):
    return WaitEdge(resource, holder, start, end)


class TestUnion:
    def test_disjoint_and_overlapping(self):
        assert union_ns(()) == 0
        assert union_ns((_edge(0, 10),)) == 10
        assert union_ns((_edge(0, 10), _edge(20, 30))) == 20
        assert union_ns((_edge(0, 10), _edge(5, 15))) == 15
        assert union_ns((_edge(0, 30), _edge(5, 15))) == 30


def _trace_stub(recorder, io_id, latency, waits=(), op="read", pid=1):
    """Feed a minimal fake finished trace into a recorder."""

    class Stub:
        pass

    stub = Stub()
    stub.io_id = io_id
    stub.pid = pid
    stub.op = op
    stub.offset = 0
    stub.nbytes = 4096
    stub.start_ns = 0
    stub.end_ns = latency
    stub._waits = list(waits)
    stub.phases = lambda: []
    recorder.observe(stub)


class TestReservoir:
    def test_keeps_exactly_top_k_slowest(self):
        recorder = BlameRecorder(BlameConfig(top=3))
        for io_id, latency in enumerate((50, 10, 90, 30, 70, 20, 60)):
            _trace_stub(recorder, io_id, latency)
        [(key, records)] = recorder.groups()
        assert key == ("sim1", "read")
        assert [r.latency_ns for r in records] == [90, 70, 60]
        assert recorder.observed == 7

    def test_ties_break_on_pid_then_io_id(self):
        recorder = BlameRecorder(BlameConfig(top=2))
        for io_id in (5, 1, 3):
            _trace_stub(recorder, io_id, 40)
        [(_key, records)] = recorder.groups()
        assert [r.io_id for r in records] == [1, 3]

    def test_edges_clamped_to_request_window(self):
        recorder = BlameRecorder(BlameConfig(top=1))
        _trace_stub(
            recorder, 0, 100,
            waits=[_edge(-50, 30), _edge(80, 400), _edge(200, 300)],
        )
        [(_key, [record])] = recorder.groups()
        assert [(e.start_ns, e.end_ns) for e in record.edges] == [(0, 30), (80, 100)]
        assert record.wait_ns == 50
        assert record.service_ns == 50

    def test_blamed_shares_sum_with_service_to_one(self):
        recorder = BlameRecorder(BlameConfig(top=1))
        _trace_stub(
            recorder, 0, 100,
            waits=[_edge(0, 40, "die", "gc"), _edge(20, 60, "ch", "xfer")],
        )
        [(_key, [record])] = recorder.groups()
        shares = record.blamed_shares()
        assert record.wait_ns == 60  # union of [0,40] and [20,60]
        total = sum(share for _r, _h, share in shares)
        assert total == pytest.approx(record.wait_ns / record.latency_ns)
        assert total + record.service_ns / record.latency_ns == pytest.approx(1.0)

    def test_absorb_rebases_pid_and_io_id(self):
        parent = BlameRecorder(BlameConfig(top=4))
        parent.new_sim()
        parent.label_device("ull")
        _trace_stub(parent, 0, 50)
        worker = BlameRecorder(BlameConfig(top=4))
        worker.new_sim()
        worker.label_device("ull")
        _trace_stub(worker, 0, 80)
        parent.absorb(worker, io_base=7)
        [(_key, records)] = parent.groups()
        assert [(r.pid, r.io_id) for r in records] == [(2, 7), (1, 0)]
        assert parent.device_labels == {1: "ull", 2: "ull"}
        assert parent.observed == 2


# ----------------------------------------------------------------------
# SLO monitor
# ----------------------------------------------------------------------
class TestSloMonitor:
    def test_attainment_and_burn(self):
        spec = SloSpec.parse("read:60ns@0.9")
        recorder = BlameRecorder(BlameConfig(slos=(spec,), period_ns=100))
        recorder.new_sim()
        for io_id, latency in enumerate((10, 20, 70, 90)):
            _trace_stub(recorder, io_id, latency)
        [row] = recorder.slo_rows()
        assert row["checked"] == 4
        assert row["misses"] == 2
        assert row["attainment"] == pytest.approx(0.5)
        assert not row["met"]
        # All four I/Os land in the first 100ns bucket: burn is the miss
        # fraction over the error budget = 0.5 / 0.1.
        assert row["peak_burn"] == pytest.approx(5.0)

    def test_op_filter(self):
        spec = SloSpec.parse("write:60ns")
        recorder = BlameRecorder(BlameConfig(slos=(spec,)))
        recorder.new_sim()
        _trace_stub(recorder, 0, 500, op="read")
        [row] = recorder.slo_rows()
        assert row["checked"] == 0 and row["met"]

    def test_burn_series_merge_across_absorb(self):
        spec = SloSpec.parse("read:60ns")
        parent = BlameRecorder(BlameConfig(slos=(spec,), period_ns=100))
        parent.new_sim()
        _trace_stub(parent, 0, 70)
        worker = BlameRecorder(BlameConfig(slos=(spec,), period_ns=100))
        worker.new_sim()
        _trace_stub(worker, 0, 90)
        parent.absorb(worker)
        [row] = parent.slo_rows()
        assert row["checked"] == 2 and row["misses"] == 2
        series = parent.burn_series(0)
        assert {s.pid for s in series} == {1, 2}


# ----------------------------------------------------------------------
# Conservation on a real figure run with faults enabled
# ----------------------------------------------------------------------
class TestConservation:
    def test_fault_figure_conserves_wait_plus_service(self):
        from repro.obs.anatomy import verify_conservation

        with blame_bundle() as obs:
            run_figure("fault-readtail", io_count=300)
        traced = verify_conservation(obs.tracer)
        assert traced > 0
        checked = verify_blame_conservation(obs.blame)
        assert checked > 0
        # The injected NAND read failures must show up as blamed waits.
        resources = {
            (resource, holder)
            for resource, holder, _total, _edges in obs.blame.resource_totals()
        }
        assert any(holder == "ecc_retry" for _r, holder in resources)

    def test_gc_write_workload_blames_device_resources(self):
        with blame_bundle() as obs:
            engine = SweepEngine(jobs=1)
            engine.run(ExperimentSpec(name="blame-gc", points=(gc_point(),)))
        assert verify_blame_conservation(obs.blame) > 0
        rows = obs.blame.resource_totals()
        assert rows, "GC workload recorded no wait edges"
        resources = {resource for resource, _h, _t, _e in rows}
        assert any(r.startswith("ssd.") for r in resources)


# ----------------------------------------------------------------------
# Byte-identity: blame observes, never steers
# ----------------------------------------------------------------------
class TestByteIdentity:
    def test_blamed_run_is_identical_to_bare(self):
        bare, bare_events = run_small_job()
        with blame_bundle():
            blamed, blamed_events = run_small_job()
        assert bare_events == blamed_events
        assert bare.latency == blamed.latency
        assert bare.read_latency == blamed.read_latency
        assert bare.duration_ns == blamed.duration_ns
        assert bare.bytes_done == blamed.bytes_done

    def test_disabled_bundle_has_no_blame(self):
        obs = Observability(tracing=False, metrics=False)
        assert obs.blame is None
        assert not obs.enabled

    def test_blame_requires_tracing(self):
        with pytest.raises(ValueError, match="tracing"):
            Observability(tracing=False, metrics=False, blame=True)

    def test_blame_alone_enables_bundle(self):
        obs = blame_bundle()
        assert obs.enabled
        assert obs.tracer.blame is obs.blame


class TestSerialParallelIdentity:
    def run_points(self, jobs):
        obs = Observability(
            blame=BlameConfig(slos=(SloSpec.parse("*:500us@0.99"),))
        )
        with obs:
            engine = SweepEngine(jobs=jobs)
            points = tuple(
                gc_point(io_count=250, key=("gc", qd), iodepth=qd,
                         engine="libaio")
                for qd in (1, 4)
            )
            engine.run(ExperimentSpec(name="blame-det", points=points))
        return obs

    def test_parallel_blame_identical_to_serial(self):
        serial = self.run_points(jobs=1)
        parallel = self.run_points(jobs=4)
        assert blame_table(serial.blame) == blame_table(parallel.blame)
        assert blame_report_html(serial.blame) == blame_report_html(
            parallel.blame
        )
        assert serial.blame.observed == parallel.blame.observed


# ----------------------------------------------------------------------
# Interference workload: the table names the tail's top resource
# ----------------------------------------------------------------------
class TestInterferenceTable:
    def test_randrw_table_names_p999_resource(self):
        with blame_bundle() as obs:
            engine = SweepEngine(jobs=1)
            engine.run(
                ExperimentSpec(
                    name="blame-rw",
                    points=(gc_point(io_count=500, rw="randrw", key="rw"),),
                )
            )
        table = blame_table(obs.blame)
        assert "p99.9 is" in table
        # Reads and writes interfere on device resources; the blamed
        # holder for the tail must be a concrete device-side cause.
        line = next(
            ln for ln in table.splitlines() if ln.strip().startswith("p99.9 is")
        )
        assert "%" in line and "held by" in line


# ----------------------------------------------------------------------
# JSONL structured-event export
# ----------------------------------------------------------------------
class TestJsonlExport:
    def run_traced(self):
        obs = Observability(telemetry=True, blame=True)
        with obs:
            run_small_job(io_count=120)
        return obs

    def test_schema_and_shape(self):
        obs = self.run_traced()
        lines = trace_jsonl_lines(
            obs.tracer, telemetry=obs.telemetry if obs.telemetry.enabled else None
        )
        objects = [json.loads(line) for line in lines]
        assert all(obj["schema"] == JSONL_SCHEMA for obj in objects)
        header = objects[0]
        assert header["type"] == "header"
        assert header["ios"] == sum(1 for o in objects if o["type"] == "io")
        kinds = {obj["type"] for obj in objects}
        assert {"header", "io", "span", "sample"} <= kinds

    def test_wait_edges_exported(self):
        with blame_bundle() as obs:
            run_figure("fault-readtail", io_count=300)
        objects = [json.loads(line) for line in trace_jsonl_lines(obs.tracer)]
        waits = [obj for obj in objects if obj["type"] == "wait"]
        assert waits
        sample = waits[0]
        assert {"resource", "holder", "start_ns", "end_ns", "dur_ns"} <= set(sample)
        assert all(w["dur_ns"] == w["end_ns"] - w["start_ns"] for w in waits)

    def test_deterministic_and_write_counts_lines(self, tmp_path):
        obs = self.run_traced()
        first = trace_jsonl_lines(obs.tracer)
        second = trace_jsonl_lines(obs.tracer)
        assert first == second
        path = tmp_path / "trace.jsonl"
        count = write_trace_jsonl(obs.tracer, str(path))
        text = path.read_text()
        assert count == len(text.splitlines()) == len(first)


# ----------------------------------------------------------------------
# CLI: validators and the blame subcommand
# ----------------------------------------------------------------------
class TestCliValidation:
    @pytest.mark.parametrize(
        "argv",
        [
            ["trace", "fig04a", "--telemetry-period", "0"],
            ["trace", "fig04a", "--telemetry-period", "-5"],
            ["profile", "fig04a", "--top", "0"],
            ["profile", "fig04a", "--period", "-1"],
            ["perf", "fig04a", "--threshold", "0"],
            ["fig04a", "--fault-seed", "-1"],
            ["blame", "fig04a", "--top", "0"],
            ["blame", "fig04a", "--slo", "read150us"],
        ],
    )
    def test_bad_flag_values_exit_cleanly(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_fault_seed_zero_is_allowed(self, capsys):
        assert main(
            ["fault-retry", "--fault-seed", "0", "--scale", "0.2", "--no-cache"]
        ) == 0


class TestCliBlame:
    def test_blame_subcommand_prints_conservation_and_table(
        self, capsys, tmp_path
    ):
        out_html = tmp_path / "blame.html"
        trace_out = tmp_path / "trace.jsonl"
        code = main(
            [
                "blame", "fault-readtail", "--scale", "0.3", "--no-cache",
                "--slo", "read:200us@0.99",
                "--blame-out", str(out_html),
                "--trace-out", str(trace_out),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "conservation: OK" in out
        assert "p99.9 is" in out
        assert "SLO attainment" in out
        html = out_html.read_text()
        assert html.startswith("<!DOCTYPE html>")
        first = json.loads(trace_out.read_text().splitlines()[0])
        assert first["type"] == "header" and first["schema"] == JSONL_SCHEMA

    def test_blame_flag_on_figures(self, capsys):
        assert main(
            ["fault-retry", "--blame", "--scale", "0.2", "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "Blame: tail-latency wait-for attribution" in out

    def test_unknown_figure(self, capsys):
        assert main(["blame", "fig99"]) == 2


# ----------------------------------------------------------------------
# Text table rendering
# ----------------------------------------------------------------------
class TestBlameTable:
    def test_empty_recorder_renders(self):
        recorder = BlameRecorder()
        table = blame_table(recorder)
        assert "I/Os observed: 0" in table

    def test_table_lists_resources_and_slos(self):
        spec = SloSpec.parse("read:60ns@0.9")
        recorder = BlameRecorder(BlameConfig(slos=(spec,)))
        recorder.new_sim()
        recorder.label_device("ull")
        _trace_stub(recorder, 0, 100, waits=[_edge(0, 40, "die0", "gc")])
        _trace_stub(recorder, 1, 50)
        table = blame_table(recorder)
        assert "ull / read" in table
        assert "die0" in table and "gc" in table
        assert "MISSED" in table

    def test_pickle_round_trip(self):
        recorder = BlameRecorder(BlameConfig(slos=(SloSpec.parse("read:60ns"),)))
        recorder.new_sim()
        _trace_stub(recorder, 0, 100, waits=[_edge(0, 40, "die0", "gc")])
        clone = pickle.loads(pickle.dumps(recorder))
        assert blame_table(clone) == blame_table(recorder)

    def test_default_top_is_ten(self):
        assert DEFAULT_TOP == 10
        assert BlameConfig().top == 10
