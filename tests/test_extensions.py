"""Tests for the light-queue extension and the ablation experiments."""

import pytest

from repro.core.ablations import hybrid_sleep_ablation, map_cache_ablation
from repro.core.extensions import lightqueue_study
from repro.core.runners import light_point
from repro.core.sweep import sweep
from repro.kstack.completion import CompletionMethod
from repro.nvme.lightweight import LightQueuePair, LightQueueTimings
from repro.nvme.queue import QueueFull
from repro.sim import Simulator
from repro.ssd import SsdDevice
from repro.ssd.device import IoOp
from tests.test_ssd_device import tiny_config


class TestLightQueuePair:
    def make_pair(self, **kwargs):
        sim = Simulator()
        device = SsdDevice(sim, tiny_config())
        device.precondition(1.0)
        return sim, LightQueuePair(sim, device, **kwargs)

    def test_submit_and_complete(self):
        sim, pair = self.make_pair()
        pending = pair.submit(IoOp.READ, 0, 4096)
        sim.run_until_event(pending.cqe_event)
        assert pending.cqe_ns is not None
        assert pair.completed == 1
        assert pair.outstanding == 0

    def test_depth_limit_is_32(self):
        sim, pair = self.make_pair()
        for _ in range(32):
            pair.submit(IoOp.READ, 0, 4096)
        with pytest.raises(QueueFull):
            pair.submit(IoOp.READ, 0, 4096)

    def test_slots_recycle(self):
        sim, pair = self.make_pair()
        for _ in range(3):
            for _ in range(32):
                pair.submit(IoOp.READ, 0, 4096)
            sim.run()
        assert pair.completed == 96

    def test_lighter_protocol_latency_than_nvme_rings(self):
        from repro.nvme import NvmeController

        sim, pair = self.make_pair()
        light = pair.submit(IoOp.READ, 0, 4096)
        sim.run_until_event(light.cqe_event)
        light_latency = light.cqe_ns - light.submit_ns

        sim2 = Simulator()
        device2 = SsdDevice(sim2, tiny_config())
        device2.precondition(1.0)
        rich_pair = NvmeController(sim2, device2).create_queue_pair()
        rich = rich_pair.submit(IoOp.READ, 0, 4096)
        sim2.run_until_event(rich.cqe_event)
        rich_latency = rich.cqe_ns - rich.submit_ns
        assert light_latency < rich_latency

    def test_msi_only_when_enabled(self):
        sim, pair = self.make_pair(interrupts_enabled=False)
        fired = []
        pair.on_msi(fired.append)
        pair.submit(IoOp.READ, 0, 4096)
        sim.run()
        assert fired == []

    def test_custom_timings(self):
        sim, pair = self.make_pair(
            timings=LightQueueTimings(issue_ns=50_000, complete_ns=50_000)
        )
        pending = pair.submit(IoOp.READ, 0, 4096)
        sim.run_until_event(pending.cqe_event)
        assert pending.cqe_ns - pending.submit_ns > 100_000


class TestLightQueueStack:
    def test_light_stack_beats_rich_stack(self):
        points = [
            light_point(
                "ull", "randread", light=light,
                completion=CompletionMethod.INTERRUPT.value, io_count=150,
            )
            for light in (False, True)
        ]
        data = sweep(points, name="light-vs-rich")
        rich = data[points[0].key].result
        light = data[points[1].key].result
        assert light.latency.mean_ns < rich.latency.mean_ns

    def test_study_structure(self):
        result = lightqueue_study(io_count=120)
        assert len(result.series) == 4
        assert 0 < result.extras["read_saving_frac"] < 0.5


class TestAblations:
    def test_map_cache_ablation_structure(self):
        result = map_cache_ablation(io_count=250)
        assert len(result.series) == 2
        cached = result.get("map cache ON")
        assert cached.value_at("RndRd") > cached.value_at("SeqRd")

    def test_hybrid_sleep_fraction_changes_cpu(self):
        result = hybrid_sleep_ablation(io_count=400, fractions=(0.25, 0.75))
        cpu = result.get("CPU utilization")
        assert cpu.value_at("0.75") < cpu.value_at("0.25")
