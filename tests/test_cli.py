"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import _scaled_kwargs, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig04a" in out and "fig23" in out and "table1" in out

    def test_run_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Z-NAND" in out and "100.0" in out

    def test_unknown_figure(self, capsys):
        assert main(["fig99"]) == 2

    def test_no_arguments_prints_usage(self, capsys):
        assert main([]) == 2

    def test_scaled_run(self, capsys):
        assert main(["fig14b", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "blk_mq_poll" in out


class TestScaling:
    def test_scale_shrinks_io_count(self):
        kwargs = _scaled_kwargs("fig10", 0.1)
        assert kwargs["io_count"] == 200

    def test_scale_grows_io_count(self):
        # Regression: growth used to be possible only by editing source;
        # --scale above 1.0 must apply, uncapped.
        kwargs = _scaled_kwargs("fig10", 2.0)
        assert kwargs["io_count"] == 4000

    def test_scale_one_is_default(self):
        assert _scaled_kwargs("fig10", 1.0) == {}

    def test_scale_floor_only_shrinking(self):
        assert _scaled_kwargs("fig10", 0.0001)["io_count"] == 100
        assert _scaled_kwargs("fig10", 1.5)["io_count"] == 3000

    def test_figures_without_io_count_untouched(self, capsys):
        assert _scaled_kwargs("table1", 0.1) == {}
        assert "--scale has no effect" in capsys.readouterr().err

    def test_self_scaling_figures_note_on_stderr(self, capsys):
        # fig07b defaults io_count=0 (per-device GC counts).
        assert _scaled_kwargs("fig07b", 0.1) == {}
        assert "--scale has no effect" in capsys.readouterr().err


class TestSeed:
    def test_seed_threads_to_figures_that_accept_it(self):
        assert _scaled_kwargs("ext-anatomy", 1.0, seed=7) == {"seed": 7}

    def test_seed_skipped_elsewhere(self):
        assert _scaled_kwargs("fig10", 1.0, seed=7) == {}

    def test_seed_changes_nothing_by_default(self):
        assert _scaled_kwargs("ext-anatomy", 1.0) == {}


class TestObservabilityFlags:
    def test_trace_out_writes_parseable_chrome_json(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        csv_path = tmp_path / "metrics.csv"
        assert (
            main(
                [
                    "fig14b",
                    "--scale",
                    "0.1",
                    "--trace-out",
                    str(trace_path),
                    "--metrics-out",
                    str(csv_path),
                    "--anatomy",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "latency anatomy over" in out
        document = json.loads(trace_path.read_text())
        assert document["traceEvents"]
        assert {e["ph"] for e in document["traceEvents"]} <= {"X", "M"}
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("name,kind,unit")

    def test_multi_figure_outputs_get_suffixes(self, tmp_path):
        from repro.__main__ import _suffixed

        assert _suffixed("t.json", "fig10", multi=False) == "t.json"
        assert _suffixed("t.json", "fig10", multi=True) == "t.fig10.json"


class TestSubcommands:
    def test_explicit_figures_subcommand(self, capsys):
        assert main(["figures", "table1"]) == 0
        assert "Z-NAND" in capsys.readouterr().out

    def test_sweep_warms_without_rendering(self, capsys):
        assert main(["sweep", "table1"]) == 0
        captured = capsys.readouterr()
        assert "Z-NAND" not in captured.out
        assert "table1: points=" in captured.err

    def test_trace_defaults_to_anatomy(self, capsys):
        assert main(["trace", "fig14b", "--scale", "0.1"]) == 0
        captured = capsys.readouterr()
        assert "latency anatomy over" in captured.out

    def test_trace_requires_exactly_one_figure(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace"])

    def test_unknown_figure_in_subcommand(self, capsys):
        assert main(["figures", "fig99"]) == 2


class TestDevicesSubcommand:
    def test_list_names_every_device_and_preset_alias(self, capsys):
        assert main(["devices", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("zssd", "intel750", "qlc", "planar-mlc",
                     "tlc-multistep", "no-gc-pm"):
            assert name in out
        assert "preset alias" in out and "ull" in out

    def test_show_dumps_toml_with_hash_on_stderr(self, capsys):
        assert main(["devices", "show", "qlc"]) == 0
        captured = capsys.readouterr()
        assert '[timing]' in captured.out and 'name = "qlc"' in captured.out
        assert "spec_hash:" in captured.err

    def test_show_json_format(self, capsys):
        import json

        assert main(["devices", "show", "zssd", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["name"] == "zssd"

    def test_show_preset_via_spec_twin(self, capsys):
        assert main(["devices", "show", "ull"]) == 0
        assert 'name = "ull"' in capsys.readouterr().out

    def test_unknown_device_exits_2_with_clean_error(self, capsys):
        assert main(["devices", "show", "warp-drive"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("devices:")
        assert "Traceback" not in err


class TestDeviceFlag:
    def test_figures_accept_device_override(self, capsys):
        assert main(
            ["figures", "fig14b", "--scale", "0.1", "--device", "zssd"]
        ) == 0
        assert "blk_mq_poll" in capsys.readouterr().out

    def test_device_flag_accepts_spec_path(self, capsys):
        from repro.ssd.registry import DEVICES_DIR

        path = str(DEVICES_DIR / "zssd.toml")
        assert main(
            ["figures", "fig14b", "--scale", "0.1", "--device", path]
        ) == 0

    def test_bad_device_name_exits_2(self, capsys):
        assert main(
            ["figures", "fig14b", "--scale", "0.1", "--device", "warp-drive"]
        ) == 2
        err = capsys.readouterr().err
        assert "device spec error" in err
        assert "Traceback" not in err

    def test_override_changes_measured_latency(self, capsys):
        # fig14b's grids are declared on the presets; overriding with the
        # much slower QLC device must move the measured numbers.
        assert main(["figures", "fig10", "--scale", "0.05"]) == 0
        baseline = capsys.readouterr().out
        assert main(
            ["figures", "fig10", "--scale", "0.05", "--device", "qlc"]
        ) == 0
        overridden = capsys.readouterr().out
        assert baseline != overridden


class TestFaultFlags:
    def test_fault_seed_threads_to_fault_figures(self):
        assert _scaled_kwargs("fault-readtail", 1.0, fault_seed=9) == {
            "fault_seed": 9
        }

    def test_fault_seed_skipped_elsewhere(self):
        assert _scaled_kwargs("fig10", 1.0, fault_seed=9) == {}

    def test_faults_flag_installs_a_plan_around_the_run(self, capsys):
        # table1 runs no simulations, so this exercises parsing and the
        # install/uninstall bracket without costing a measurement.
        from repro.faults.plan import active_plan

        assert active_plan() is None
        assert main(
            ["figures", "table1", "--faults", "nand.read_fail_prob=0.01"]
        ) == 0
        assert active_plan() is None

    def test_bad_fault_spec_raises(self):
        with pytest.raises(ValueError, match="unknown fault layer"):
            main(["figures", "table1", "--faults", "bogus.x=1"])


class TestProfileSubcommand:
    def test_profile_emits_table_and_exports(self, tmp_path, capsys):
        import json

        speedscope = tmp_path / "prof.speedscope.json"
        collapsed = tmp_path / "prof.collapsed"
        assert (
            main(
                [
                    "profile",
                    "fig14b",
                    "--scale",
                    "0.1",
                    "--no-wall",
                    "--profile-out",
                    str(speedscope),
                    "--collapsed",
                    str(collapsed),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "hotspots: fig14b" in out
        assert "attributed" in out
        assert "trampoline hops" in out
        doc = json.loads(speedscope.read_text())
        assert doc["profiles"][0]["samples"]
        assert collapsed.read_text().strip()

    def test_profile_rejects_unknown_figure(self, capsys):
        assert main(["profile", "fig99"]) == 2

    def test_perf_profile_folds_hotspots_into_doc(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "bench.json"
        assert (
            main(
                [
                    "perf",
                    "fig14b",
                    "--scale",
                    "0.1",
                    "--profile",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        doc = json.loads(out_path.read_text())
        rows = doc["figures"]["fig14b"]["hotspots"]
        assert rows
        assert rows[0]["events"] > 0
        assert 0.0 < rows[0]["share"] <= 1.0
