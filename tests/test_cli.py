"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import _scaled_kwargs, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig04a" in out and "fig23" in out and "table1" in out

    def test_run_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Z-NAND" in out and "100.0" in out

    def test_unknown_figure(self, capsys):
        assert main(["fig99"]) == 2

    def test_no_arguments_prints_usage(self, capsys):
        assert main([]) == 2

    def test_scaled_run(self, capsys):
        assert main(["fig14b", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "blk_mq_poll" in out


class TestScaling:
    def test_scale_shrinks_io_count(self):
        kwargs = _scaled_kwargs("fig10", 0.1)
        assert kwargs["io_count"] == 200

    def test_scale_one_is_default(self):
        assert _scaled_kwargs("fig10", 1.0) == {}

    def test_scale_floor(self):
        assert _scaled_kwargs("fig10", 0.0001)["io_count"] == 100

    def test_figures_without_io_count_untouched(self):
        assert _scaled_kwargs("table1", 0.1) == {}

    def test_self_scaling_figures_untouched(self):
        # fig07b defaults io_count=0 (per-device GC counts).
        assert _scaled_kwargs("fig07b", 0.1) == {}
