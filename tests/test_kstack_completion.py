"""Tests for the three completion engines and the kernel stack facade."""


from repro.host.accounting import ExecMode
from repro.kstack import CompletionMethod, KernelStack, make_engine
from repro.kstack.completion import HybridPollEngine, InterruptEngine, PollEngine
from repro.sim import Simulator
from repro.ssd import SsdDevice
from repro.ssd.device import IoOp
from tests.test_ssd_device import tiny_config


def make_stack(method: CompletionMethod, **config_overrides):
    sim = Simulator()
    device = SsdDevice(sim, tiny_config(**config_overrides))
    device.precondition(1.0)
    return sim, KernelStack(sim, device, completion=method)


def run_ios(sim, stack, count=30, op=IoOp.READ):
    latencies = []

    def flow():
        for index in range(count):
            latency = yield from stack.sync_io(op, (index % 64) * 4096, 4096)
            latencies.append(latency)

    process = sim.process(flow())
    sim.run_until_event(process)
    assert process.triggered
    return latencies


class TestEngineFactory:
    def test_factory_builds_each_method(self):
        sim = Simulator()
        from repro.host.accounting import CpuAccounting
        from repro.host.costs import DEFAULT_COSTS

        for method, cls in (
            (CompletionMethod.INTERRUPT, InterruptEngine),
            (CompletionMethod.POLL, PollEngine),
            (CompletionMethod.HYBRID, HybridPollEngine),
        ):
            engine = make_engine(method, sim, DEFAULT_COSTS, CpuAccounting())
            assert isinstance(engine, cls)
            assert engine.method is method


class TestRelativeBehavior:
    def test_poll_is_faster_than_interrupt_on_fast_device(self):
        sim_int, stack_int = make_stack(CompletionMethod.INTERRUPT)
        mean_int = sum(run_ios(sim_int, stack_int)) / 30
        sim_poll, stack_poll = make_stack(CompletionMethod.POLL)
        mean_poll = sum(run_ios(sim_poll, stack_poll)) / 30
        assert mean_poll < mean_int
        # The saving is the MSI + ISR + wake-up path: ~1.5-3 us.
        assert 1_000 < mean_int - mean_poll < 4_000

    def test_hybrid_lands_between_interrupt_and_poll(self):
        means = {}
        for method in CompletionMethod:
            sim, stack = make_stack(method)
            means[method] = sum(run_ios(sim, stack, count=60)) / 60
        assert means[CompletionMethod.POLL] <= means[CompletionMethod.HYBRID]
        assert means[CompletionMethod.HYBRID] < means[CompletionMethod.INTERRUPT]

    def test_poll_burns_the_core_interrupt_does_not(self):
        utilizations = {}
        for method in (CompletionMethod.INTERRUPT, CompletionMethod.POLL):
            sim, stack = make_stack(method)
            start = sim.now
            run_ios(sim, stack, count=40)
            elapsed = sim.now - start
            utilizations[method] = stack.accounting.utilization(elapsed)
        assert utilizations[CompletionMethod.POLL] > 0.85
        assert utilizations[CompletionMethod.INTERRUPT] < 0.5

    def test_hybrid_sleep_halves_the_spin(self):
        sim, stack = make_stack(CompletionMethod.HYBRID)
        start = sim.now
        run_ios(sim, stack, count=60)
        elapsed = sim.now - start
        utilization = stack.accounting.utilization(elapsed)
        assert 0.30 < utilization < 0.75

    def test_poll_charges_blk_mq_poll_and_nvme_poll(self):
        sim, stack = make_stack(CompletionMethod.POLL)
        run_ios(sim, stack, count=20)
        functions = stack.accounting.cycles_by_function(ExecMode.KERNEL)
        assert functions["blk_mq_poll"] > functions["nvme_poll"] > 0

    def test_interrupt_charges_isr(self):
        sim, stack = make_stack(CompletionMethod.INTERRUPT)
        run_ios(sim, stack, count=10)
        functions = stack.accounting.cycles_by_function(ExecMode.KERNEL)
        assert functions["nvme_irq"] > 0
        assert "blk_mq_poll" not in functions

    def test_poll_issues_more_memory_instructions(self):
        sim_int, stack_int = make_stack(CompletionMethod.INTERRUPT)
        run_ios(sim_int, stack_int, count=30)
        sim_poll, stack_poll = make_stack(CompletionMethod.POLL)
        run_ios(sim_poll, stack_poll, count=30)
        ratio = (
            stack_poll.accounting.total_loads()
            / stack_int.accounting.total_loads()
        )
        assert 1.5 < ratio < 5.0


class TestHybridEstimator:
    def test_mean_wait_tracks_observations(self):
        sim, stack = make_stack(CompletionMethod.HYBRID)
        run_ios(sim, stack, count=40)
        engine = stack.engine
        assert isinstance(engine, HybridPollEngine)
        # Device wait for 4KB reads on the tiny device is ~5-8 us.
        assert 3_000 < engine.mean_wait_ns < 12_000

    def test_first_io_has_no_sleep_estimate(self):
        sim, stack = make_stack(CompletionMethod.HYBRID)
        engine = stack.engine
        assert engine.mean_wait_ns is None
        run_ios(sim, stack, count=1)
        assert engine.mean_wait_ns is not None


class TestPollTailPenalty:
    def test_long_device_stalls_hurt_poll_more(self):
        """The Fig. 11 mechanism: spins beyond the scheduler grace pay a
        proportional penalty, so stalled requests complete later under
        polling than under interrupts."""
        overrides = dict(read_stall_prob=0.2, read_stall_ns=400_000)
        sim_int, stack_int = make_stack(CompletionMethod.INTERRUPT, **overrides)
        tail_int = max(run_ios(sim_int, stack_int, count=60))
        sim_poll, stack_poll = make_stack(CompletionMethod.POLL, **overrides)
        tail_poll = max(run_ios(sim_poll, stack_poll, count=60))
        assert tail_poll > tail_int

    def test_short_waits_pay_no_penalty(self):
        sim, stack = make_stack(CompletionMethod.POLL)
        run_ios(sim, stack, count=20)
        functions = stack.accounting.cycles_by_function(ExecMode.KERNEL)
        assert "deferred_kernel_work" not in functions


class TestStackFacade:
    def test_hipri_set_only_for_polling(self):
        _, stack_int = make_stack(CompletionMethod.INTERRUPT)
        _, stack_poll = make_stack(CompletionMethod.POLL)
        assert not stack_int.hipri
        assert stack_poll.hipri

    def test_interrupts_disabled_on_polled_qpair(self):
        _, stack_poll = make_stack(CompletionMethod.POLL)
        _, stack_int = make_stack(CompletionMethod.INTERRUPT)
        assert not stack_poll.qpair.interrupts_enabled
        assert stack_int.qpair.interrupts_enabled

    def test_sync_io_returns_wall_latency(self):
        sim, stack = make_stack(CompletionMethod.INTERRUPT)
        latencies = run_ios(sim, stack, count=5)
        assert all(5_000 < lat < 60_000 for lat in latencies)

    def test_async_submit_and_complete(self):
        sim, stack = make_stack(CompletionMethod.INTERRUPT)

        def flow():
            request = yield from stack.submit_async(IoOp.READ, 0, 4096)
            yield request.pending.cqe_event
            delay = stack.async_completion_ns()
            yield sim.timeout(delay)
            stack.complete_async(request)
            return True

        process = sim.process(flow())
        sim.run_until_event(process)
        assert process.value is True
        assert stack.driver.outstanding == 0
