"""Tests for the experiment harness (build helpers + api facade)."""

import pytest

from repro.api import JobConfig, Testbed
from repro.core.experiment import (
    DeviceKind,
    StackKind,
    build_device,
    build_stack,
    device_config,
)
from repro.kstack.completion import CompletionMethod
from repro.kstack.stack import KernelStack
from repro.sim import Simulator
from repro.spdk.stack import SpdkStack


def sync_job(device, rw, *, io_count, block_size=4096, stack="kernel",
             completion="interrupt", seed=42):
    """A psync measurement with the historical one-seed convention."""
    testbed = Testbed(
        device=device, stack=stack, completion=completion,
        device_seed=seed, stack_seed=seed,
    )
    return testbed.run_job(JobConfig(
        rw=rw, engine="psync", block_size=block_size, io_count=io_count,
        seed=seed,
    ))


def async_job(device, rw, *, iodepth=1, io_count, write_fraction=0.5,
              seed=42, want_device=False):
    """A libaio measurement with the historical seed split (device 42 /
    stack 11)."""
    testbed = Testbed(device=device, device_seed=seed, stack_seed=11)
    return testbed.run_job(
        JobConfig(
            rw=rw, engine="libaio", iodepth=iodepth, io_count=io_count,
            write_fraction=write_fraction, seed=seed,
        ),
        want_device=want_device,
    )


class TestBuilders:
    def test_device_configs_differ(self):
        ull = device_config(DeviceKind.ULL)
        nvme = device_config(DeviceKind.NVME)
        assert ull.suspend_resume and not nvme.suspend_resume
        assert ull.timing.name == "Z-NAND"
        assert nvme.timing.name == "planar-MLC"
        assert nvme.read_cache_units > 0 and ull.read_cache_units == 0

    def test_build_device_preconditions(self):
        sim = Simulator()
        device = build_device(sim, DeviceKind.ULL, precondition=1.0)
        assert device.ftl.mapping.mapped_lpn_count == device.logical_pages

    def test_build_device_skips_precondition(self):
        sim = Simulator()
        device = build_device(sim, DeviceKind.ULL, precondition=0.0)
        assert device.ftl.mapping.mapped_lpn_count == 0

    def test_build_stack_kinds(self):
        sim = Simulator()
        device = build_device(sim, DeviceKind.ULL, precondition=0.0)
        assert isinstance(build_stack(sim, device), KernelStack)
        assert isinstance(
            build_stack(sim, device, stack=StackKind.SPDK), SpdkStack
        )


class TestRunners:
    def test_sync_job_returns_metrics(self):
        result = sync_job(DeviceKind.ULL, "randread", io_count=100)
        assert result.latency.count == 100
        assert 8 < result.latency.mean_us < 30
        assert result.accounting is not None

    def test_sync_job_with_poll_is_faster(self):
        interrupt = sync_job(DeviceKind.ULL, "read", io_count=150)
        poll = sync_job(
            DeviceKind.ULL, "read", io_count=150,
            completion=CompletionMethod.POLL,
        )
        assert poll.latency.mean_ns < interrupt.latency.mean_ns

    def test_sync_job_spdk_stack(self):
        result = sync_job(
            DeviceKind.ULL, "read", io_count=100, stack=StackKind.SPDK
        )
        assert result.latency.mean_us < 12

    def test_async_job_returns_device(self):
        result, device = async_job(
            DeviceKind.ULL, "randread", iodepth=4, io_count=200,
            want_device=True,
        )
        assert result.latency.count == 200
        assert device.completed_reads == 200

    def test_async_bandwidth_grows_with_depth(self):
        shallow = async_job(DeviceKind.ULL, "randread", iodepth=1, io_count=300)
        deep = async_job(DeviceKind.ULL, "randread", iodepth=16, io_count=300)
        assert deep.bandwidth_mbps > 4 * shallow.bandwidth_mbps

    def test_seed_reproducibility(self):
        first = sync_job(DeviceKind.NVME, "randread", io_count=80, seed=5)
        second = sync_job(DeviceKind.NVME, "randread", io_count=80, seed=5)
        assert first.latency.mean_ns == second.latency.mean_ns
        assert first.latency.p99999_ns == second.latency.p99999_ns


class TestHeadlineNumbers:
    """Coarse checks against the paper's Section IV numbers."""

    def test_ull_random_read_near_16us(self):
        result = async_job(DeviceKind.ULL, "randread", iodepth=1, io_count=400)
        assert 12 < result.latency.mean_us < 20  # paper: 15.9 us

    def test_nvme_random_read_near_83us(self):
        result = async_job(DeviceKind.NVME, "randread", iodepth=1, io_count=400)
        assert 70 < result.latency.mean_us < 95  # paper: 82.9 us

    def test_nvme_buffered_write_near_14us(self):
        result = async_job(DeviceKind.NVME, "randwrite", iodepth=1, io_count=400)
        assert 10 < result.latency.mean_us < 18  # paper: 14.1 us

    def test_ull_write_near_11us(self):
        result = async_job(DeviceKind.ULL, "randwrite", iodepth=1, io_count=400)
        assert 8 < result.latency.mean_us < 15  # paper: 11.3 us

    def test_nvme_random_read_5x_slower_than_ull(self):
        nvme = async_job(DeviceKind.NVME, "randread", iodepth=1, io_count=300)
        ull = async_job(DeviceKind.ULL, "randread", iodepth=1, io_count=300)
        ratio = nvme.latency.mean_ns / ull.latency.mean_ns
        assert 3.5 < ratio < 7.0  # paper: 5.2x


class TestDeprecatedShims:
    """The legacy helpers still work, warn, and match the facade exactly."""

    def test_run_sync_job_warns_and_matches_facade(self):
        from repro.core.experiment import run_sync_job

        with pytest.warns(DeprecationWarning, match="run_sync_job"):
            legacy = run_sync_job(DeviceKind.ULL, "randread", io_count=120)
        direct = sync_job(DeviceKind.ULL, "randread", io_count=120)
        assert legacy.latency.mean_ns == direct.latency.mean_ns
        assert legacy.latency.p99999_ns == direct.latency.p99999_ns
        assert legacy.duration_ns == direct.duration_ns

    def test_run_async_job_warns_and_matches_facade(self):
        from repro.core.experiment import run_async_job

        with pytest.warns(DeprecationWarning, match="run_async_job"):
            legacy, legacy_dev = run_async_job(
                DeviceKind.ULL, "randread", iodepth=4, io_count=150,
                want_device=True,
            )
        direct, direct_dev = async_job(
            DeviceKind.ULL, "randread", iodepth=4, io_count=150,
            want_device=True,
        )
        assert legacy.latency.mean_ns == direct.latency.mean_ns
        assert legacy_dev.completed_reads == direct_dev.completed_reads
