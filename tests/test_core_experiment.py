"""Tests for the experiment harness (build/run helpers)."""

import pytest

from repro.core.experiment import (
    DeviceKind,
    StackKind,
    build_device,
    build_stack,
    device_config,
    run_async_job,
    run_sync_job,
)
from repro.kstack.completion import CompletionMethod
from repro.kstack.stack import KernelStack
from repro.sim import Simulator
from repro.spdk.stack import SpdkStack


class TestBuilders:
    def test_device_configs_differ(self):
        ull = device_config(DeviceKind.ULL)
        nvme = device_config(DeviceKind.NVME)
        assert ull.suspend_resume and not nvme.suspend_resume
        assert ull.timing.name == "Z-NAND"
        assert nvme.timing.name == "planar-MLC"
        assert nvme.read_cache_units > 0 and ull.read_cache_units == 0

    def test_build_device_preconditions(self):
        sim = Simulator()
        device = build_device(sim, DeviceKind.ULL, precondition=1.0)
        assert device.ftl.mapping.mapped_lpn_count == device.logical_pages

    def test_build_device_skips_precondition(self):
        sim = Simulator()
        device = build_device(sim, DeviceKind.ULL, precondition=0.0)
        assert device.ftl.mapping.mapped_lpn_count == 0

    def test_build_stack_kinds(self):
        sim = Simulator()
        device = build_device(sim, DeviceKind.ULL, precondition=0.0)
        assert isinstance(build_stack(sim, device), KernelStack)
        assert isinstance(
            build_stack(sim, device, stack=StackKind.SPDK), SpdkStack
        )


class TestRunners:
    def test_sync_job_returns_metrics(self):
        result = run_sync_job(DeviceKind.ULL, "randread", io_count=100)
        assert result.latency.count == 100
        assert 8 < result.latency.mean_us < 30
        assert result.accounting is not None

    def test_sync_job_with_poll_is_faster(self):
        interrupt = run_sync_job(DeviceKind.ULL, "read", io_count=150)
        poll = run_sync_job(
            DeviceKind.ULL, "read", io_count=150,
            completion=CompletionMethod.POLL,
        )
        assert poll.latency.mean_ns < interrupt.latency.mean_ns

    def test_sync_job_spdk_stack(self):
        result = run_sync_job(
            DeviceKind.ULL, "read", io_count=100, stack=StackKind.SPDK
        )
        assert result.latency.mean_us < 12

    def test_async_job_returns_device(self):
        result, device = run_async_job(
            DeviceKind.ULL, "randread", iodepth=4, io_count=200,
            want_device=True,
        )
        assert result.latency.count == 200
        assert device.completed_reads == 200

    def test_async_bandwidth_grows_with_depth(self):
        shallow = run_async_job(DeviceKind.ULL, "randread", iodepth=1, io_count=300)
        deep = run_async_job(DeviceKind.ULL, "randread", iodepth=16, io_count=300)
        assert deep.bandwidth_mbps > 4 * shallow.bandwidth_mbps

    def test_seed_reproducibility(self):
        first = run_sync_job(DeviceKind.NVME, "randread", io_count=80, seed=5)
        second = run_sync_job(DeviceKind.NVME, "randread", io_count=80, seed=5)
        assert first.latency.mean_ns == second.latency.mean_ns
        assert first.latency.p99999_ns == second.latency.p99999_ns


class TestHeadlineNumbers:
    """Coarse checks against the paper's Section IV numbers."""

    def test_ull_random_read_near_16us(self):
        result = run_async_job(DeviceKind.ULL, "randread", iodepth=1, io_count=400)
        assert 12 < result.latency.mean_us < 20  # paper: 15.9 us

    def test_nvme_random_read_near_83us(self):
        result = run_async_job(DeviceKind.NVME, "randread", iodepth=1, io_count=400)
        assert 70 < result.latency.mean_us < 95  # paper: 82.9 us

    def test_nvme_buffered_write_near_14us(self):
        result = run_async_job(DeviceKind.NVME, "randwrite", iodepth=1, io_count=400)
        assert 10 < result.latency.mean_us < 18  # paper: 14.1 us

    def test_ull_write_near_11us(self):
        result = run_async_job(DeviceKind.ULL, "randwrite", iodepth=1, io_count=400)
        assert 8 < result.latency.mean_us < 15  # paper: 11.3 us

    def test_nvme_random_read_5x_slower_than_ull(self):
        nvme = run_async_job(DeviceKind.NVME, "randread", iodepth=1, io_count=300)
        ull = run_async_job(DeviceKind.ULL, "randread", iodepth=1, io_count=300)
        ratio = nvme.latency.mean_ns / ull.latency.mean_ns
        assert 3.5 < ratio < 7.0  # paper: 5.2x
