"""Tests for simulation resources (Resource, Store, TimelineResource)."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Resource, Simulator, Store, TimelineResource


class TestResource:
    def test_grants_up_to_capacity_immediately(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        first = resource.request()
        second = resource.request()
        third = resource.request()
        assert first.triggered and second.triggered
        assert not third.triggered
        assert resource.in_use == 2
        assert resource.queue_length == 1

    def test_release_hands_to_oldest_waiter(self):
        sim = Simulator()
        resource = Resource(sim)
        resource.request()
        waiter_a = resource.request()
        waiter_b = resource.request()
        resource.release()
        assert waiter_a.triggered and not waiter_b.triggered

    def test_release_without_request_raises(self):
        with pytest.raises(RuntimeError):
            Resource(Simulator()).release()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)

    def test_mutual_exclusion_in_processes(self):
        sim = Simulator()
        lock = Resource(sim)
        active = []
        overlaps = []

        def worker(name):
            grant = lock.request()
            if not grant.triggered:
                yield grant
            active.append(name)
            if len(active) > 1:
                overlaps.append(tuple(active))
            yield sim.timeout(10)
            active.remove(name)
            lock.release()

        for name in "abc":
            sim.process(worker(name))
        sim.run()
        assert overlaps == []
        assert sim.now == 30


class TestStore:
    def test_fifo_order(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert store.get().value == 1
        assert store.get().value == 2

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        pending = store.get()
        assert not pending.triggered
        store.put("x")
        assert pending.value == "x"

    def test_blocked_getters_served_in_order(self):
        sim = Simulator()
        store = Store(sim)
        first = store.get()
        second = store.get()
        store.put("a")
        store.put("b")
        assert first.value == "a"
        assert second.value == "b"

    def test_len_counts_only_items(self):
        sim = Simulator()
        store = Store(sim)
        store.get()
        assert len(store) == 0
        store.put(1)
        store.put(2)
        assert len(store) == 1  # first put satisfied the blocked getter


class TestTimelineResource:
    def test_back_to_back_reservations(self):
        sim = Simulator()
        unit = TimelineResource(sim)
        assert unit.reserve(100) == (0, 100)
        assert unit.reserve(50) == (100, 150)
        assert unit.busy_ns == 150

    def test_not_before_is_respected(self):
        sim = Simulator()
        unit = TimelineResource(sim)
        assert unit.reserve(10, not_before=500) == (500, 510)

    def test_reservation_never_starts_in_the_past(self):
        sim = Simulator()
        unit = TimelineResource(sim)
        sim.schedule(1000, lambda: None)
        sim.run()
        start, end = unit.reserve(10)
        assert start == 1000 and end == 1010

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TimelineResource(Simulator()).reserve(-1)

    def test_utilization(self):
        sim = Simulator()
        unit = TimelineResource(sim)
        unit.reserve(250)
        assert unit.utilization(1000) == 0.25
        assert unit.utilization(0) == 0.0

    def test_peek_does_not_book(self):
        sim = Simulator()
        unit = TimelineResource(sim)
        unit.reserve(100)
        assert unit.peek_start() == 100
        assert unit.free_at == 100

    @given(st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=40))
    def test_property_intervals_never_overlap(self, durations):
        sim = Simulator()
        unit = TimelineResource(sim)
        intervals = [unit.reserve(d) for d in durations]
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2
            assert e2 - s2 == durations[intervals.index((s2, e2))]
        assert unit.busy_ns == sum(durations)
