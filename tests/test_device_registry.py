"""Tests for the device registry (repro.ssd.registry).

The two load-bearing guarantees:

* **golden byte-identity** — the ``zssd``/``intel750`` zoo specs build
  configs equal to the hand-wired presets, and measurements run through
  them are byte-identical to preset runs, serially and with worker
  fan-out;
* **cache-key discipline** — preset devices keep their historical sweep
  cache identity (so warm caches survive the registry), while
  spec-built devices get content-addressed ``spec:<name>:<hash>`` keys
  distinct per device.
"""

import dataclasses
import pickle

import pytest

from repro.core.runners import sync_point
from repro.core.sweep import ExperimentSpec, SweepEngine, point_cache_key
from repro.ssd.presets import build_nvme_preset, build_ull_preset
from repro.ssd.registry import (
    DEVICES_DIR,
    clear_cache,
    device_identity,
    device_override,
    effective_device,
    get_spec,
    list_devices,
    load_device_spec,
    register_spec,
    resolve_config,
    spec_label,
    unregister_spec,
)
from repro.ssd.spec import DeviceSpecError, spec_from_config

ZOO = ("intel750", "no-gc-pm", "planar-mlc", "qlc", "tlc-multistep", "zssd")


class TestRegistryBasics:
    def test_zoo_ships_the_promised_devices(self):
        names = list_devices()
        assert set(ZOO) <= set(names)
        assert len(names) >= 6

    def test_every_listed_device_resolves(self):
        for name in list_devices():
            config = resolve_config(name)
            assert config.channels >= 1
            assert spec_label(config) == name

    def test_unknown_name_is_a_spec_error_listing_choices(self):
        with pytest.raises(DeviceSpecError) as err:
            resolve_config("not-a-device")
        assert "zssd" in str(err.value) and "ull" in str(err.value)

    def test_spec_path_resolves(self):
        path = DEVICES_DIR / "qlc.toml"
        config = resolve_config(str(path))
        assert config == resolve_config("qlc")

    def test_load_device_spec(self):
        spec = load_device_spec(DEVICES_DIR / "zssd.toml")
        assert spec.name == "zssd"

    def test_file_stem_must_match_spec_name(self, tmp_path, monkeypatch):
        clear_cache()
        rogue = tmp_path / "alias.toml"
        rogue.write_text((DEVICES_DIR / "qlc.toml").read_text())
        monkeypatch.setattr("repro.ssd.registry.DEVICES_DIR", tmp_path)
        try:
            with pytest.raises(DeviceSpecError, match="stem"):
                get_spec("alias")
        finally:
            clear_cache()

    def test_register_and_unregister_in_process(self):
        spec = spec_from_config(build_ull_preset(), name="custom-dev")
        register_spec(spec)
        try:
            assert "custom-dev" in list_devices()
            assert resolve_config("custom-dev") == build_ull_preset()
        finally:
            unregister_spec(spec.name)
        assert "custom-dev" not in list_devices()

    def test_preset_names_reserved(self):
        spec = spec_from_config(build_ull_preset(), name="ull")
        with pytest.raises(DeviceSpecError, match="reserved"):
            register_spec(spec)

    def test_overrides_apply(self):
        config = resolve_config("zssd", (("overprovision", 0.33),))
        assert config.overprovision == 0.33


class TestGoldenIdentity:
    def test_zssd_config_equals_ull_preset(self):
        assert resolve_config("zssd") == build_ull_preset()

    def test_intel750_config_equals_nvme_preset(self):
        assert resolve_config("intel750") == build_nvme_preset()

    def test_preset_aliases_build_presets(self):
        assert resolve_config("ull") == build_ull_preset()
        assert resolve_config("nvme") == build_nvme_preset()

    def _measure(self, device, jobs=1):
        engine = SweepEngine(jobs=jobs)
        spec = ExperimentSpec(
            name=f"golden-{device}",
            points=tuple(
                sync_point(device, rw, io_count=150, key=(rw,))
                for rw in ("randread", "randwrite")
            ),
        )
        return {
            key: pickle.dumps(m.result.latency)
            for key, m in engine.run(spec).items()
        }

    def test_zssd_measurements_byte_identical_to_preset_serial(self):
        assert self._measure("zssd") == self._measure("ull")

    def test_zssd_measurements_byte_identical_parallel(self):
        assert self._measure("zssd", jobs=4) == self._measure("ull")

    def test_intel750_measurements_byte_identical_to_preset(self):
        assert self._measure("intel750") == self._measure("nvme")


class TestCacheIdentity:
    # The historical identity formula, frozen here on purpose: if this
    # test breaks, every pre-registry on-disk cache entry is orphaned.
    @staticmethod
    def _legacy_identity(config):
        return repr(sorted(dataclasses.asdict(config).items()))

    def test_preset_identity_is_the_legacy_formula(self):
        assert device_identity("ull") == self._legacy_identity(
            build_ull_preset()
        )
        assert device_identity("nvme") == self._legacy_identity(
            build_nvme_preset()
        )

    def test_preset_identity_with_overrides_matches_legacy(self):
        overrides = (("overprovision", 0.4),)
        expected = self._legacy_identity(
            dataclasses.replace(build_ull_preset(), overprovision=0.4)
        )
        assert device_identity("ull", overrides) == expected

    def test_spec_identity_is_content_addressed(self):
        identity = device_identity("qlc")
        assert identity.startswith("spec:qlc:")
        assert identity == f"spec:qlc:{get_spec('qlc').spec_hash()}"

    def test_zoo_devices_get_distinct_cache_keys(self):
        keys = {
            point_cache_key(sync_point(name, "randread", io_count=100))
            for name in ZOO
        }
        assert len(keys) == len(ZOO)

    def test_zssd_and_ull_points_key_differently(self):
        # Deliberate: the spec twin is content-addressed, the preset is
        # legacy-keyed.  Byte-identical *results*, separate cache rows.
        preset = point_cache_key(sync_point("ull", "randread", io_count=100))
        spec = point_cache_key(sync_point("zssd", "randread", io_count=100))
        assert preset != spec

    def test_editing_a_spec_rekeys_it(self):
        base = spec_from_config(build_ull_preset(), name="edit-me")
        edited = spec_from_config(
            dataclasses.replace(build_ull_preset(), overprovision=0.31),
            name="edit-me",
        )
        register_spec(base)
        try:
            before = device_identity("edit-me")
            register_spec(edited)
            after = device_identity("edit-me")
        finally:
            unregister_spec("edit-me")
        assert before != after


class TestDeviceOverride:
    def test_override_substitutes_at_declaration(self):
        with device_override("qlc"):
            point = sync_point("ull", "randread", io_count=100)
        assert dict(point.params)["device"] == "qlc"
        # ...but the default key still names the declared grid.
        assert point.key == ("ull", "randread", 4096, "interrupt", "kernel")

    def test_no_override_is_identity(self):
        assert effective_device("ull") == "ull"
        point = sync_point("ull", "randread", io_count=100)
        assert dict(point.params)["device"] == "ull"

    def test_override_validates_eagerly(self):
        with pytest.raises(DeviceSpecError):
            with device_override("no-such-device"):
                pass  # pragma: no cover

    def test_override_restores_on_exit(self):
        with device_override("qlc"):
            pass
        assert effective_device("ull") == "ull"
