"""Tests for the log-linear latency histogram and hotspot patterns."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.histogram import LatencyHistogram
from repro.workloads.patterns import make_pattern


class TestHistogram:
    def test_counts_and_extremes(self):
        histogram = LatencyHistogram()
        histogram.extend([100, 200, 300])
        assert len(histogram) == 3
        assert histogram.min_ns == 100
        assert histogram.max_ns == 300

    def test_small_values_are_exact(self):
        histogram = LatencyHistogram()
        histogram.extend([5, 10, 63])
        buckets = dict(histogram.nonzero_buckets())
        assert buckets == {5: 1, 10: 1, 63: 1}

    def test_percentile_within_bucket_resolution(self):
        rng = np.random.default_rng(1)
        samples = rng.uniform(5_000, 500_000, size=5_000)
        histogram = LatencyHistogram()
        histogram.extend(samples)
        for pct in (50, 90, 99):
            exact = float(np.percentile(samples, pct))
            approx = histogram.percentile(pct)
            # fio's grid: error bounded by one sub-bucket (~1.6%).
            assert abs(approx - exact) / exact < 0.05

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101)
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1)

    def test_empty_percentile_is_zero(self):
        assert LatencyHistogram().percentile(99) == 0.0

    def test_percentiles_batch(self):
        histogram = LatencyHistogram()
        histogram.extend([1_000] * 100)
        result = histogram.percentiles([50, 99])
        assert set(result) == {50, 99}

    def test_render(self):
        histogram = LatencyHistogram()
        histogram.extend([10_000] * 50 + [80_000] * 5)
        text = histogram.render()
        assert "#" in text and "us" in text
        assert len(text.splitlines()) == 2
        assert LatencyHistogram().render() == "(empty histogram)"

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=10**12), min_size=1, max_size=300
        )
    )
    def test_property_percentiles_monotone_and_bounded(self, samples):
        histogram = LatencyHistogram()
        histogram.extend(samples)
        p50 = histogram.percentile(50)
        p99 = histogram.percentile(99)
        assert p50 <= p99 * (1 + 1e-9)
        # Representative values stay within ~2% of the true extremes.
        assert histogram.percentile(100) <= max(samples) * 1.04 + 1

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=10**12))
    def test_property_bucket_value_close_to_sample(self, value):
        histogram = LatencyHistogram()
        histogram.record(value)
        (bucket_value, count), = histogram.nonzero_buckets()
        assert count == 1
        assert abs(bucket_value - value) <= max(2, value * 0.02)


class TestHotspotPattern:
    def test_skew_concentrates_accesses(self):
        pattern = make_pattern(
            "randread", 4096, 1000 * 4096,
            hotspot_fraction=0.2, hotspot_weight=0.8, seed=5,
        )
        hot_limit = 200 * 4096
        hits = sum(1 for _, off in pattern.take(4000) if off < hot_limit)
        assert 0.75 < hits / 4000 < 0.85

    def test_default_pattern_is_uniform(self):
        pattern = make_pattern("randread", 4096, 1000 * 4096, seed=5)
        hot_limit = 200 * 4096
        hits = sum(1 for _, off in pattern.take(4000) if off < hot_limit)
        assert 0.15 < hits / 4000 < 0.25

    def test_hotspot_does_not_change_sequential(self):
        pattern = make_pattern(
            "read", 4096, 4 * 4096,
            hotspot_fraction=0.5, hotspot_weight=0.9,
        )
        offsets = [off for _, off in pattern.take(4)]
        assert offsets == [0, 4096, 8192, 12288]

    def test_validation(self):
        with pytest.raises(ValueError):
            make_pattern("randread", 4096, 1 << 20, hotspot_fraction=0.2)
        with pytest.raises(ValueError):
            make_pattern("randread", 4096, 1 << 20, hotspot_weight=0.5)
        with pytest.raises(ValueError):
            make_pattern(
                "randread", 4096, 1 << 20,
                hotspot_fraction=1.0, hotspot_weight=0.5,
            )

    def test_cold_region_still_reachable(self):
        pattern = make_pattern(
            "randwrite", 4096, 100 * 4096,
            hotspot_fraction=0.1, hotspot_weight=0.9, seed=2,
        )
        offsets = {off for _, off in pattern.take(2000)}
        assert any(off >= 10 * 4096 for off in offsets)
