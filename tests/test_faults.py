"""Tests for the deterministic fault-injection plane (repro.faults)."""

import pytest

from repro.api import JobConfig, Testbed
from repro.core.sweep import ExperimentSpec, SweepEngine, make_point, point_cache_key
from repro.faults.plan import (
    FaultPlan,
    KstackFaults,
    NandFaults,
    NetFaults,
    NvmeFaults,
    active_plan,
    parse_fault_spec,
)


def run_ull(faults=None, *, rw="randread", io_count=250, completion="interrupt"):
    testbed = Testbed(device="ull", completion=completion, faults=faults)
    return testbed.run_job(
        JobConfig(rw=rw, engine="psync", io_count=io_count), want_device=True
    )


class TestFaultPlan:
    def test_default_plan_is_inert(self):
        plan = FaultPlan()
        assert not plan.any_enabled
        for layer in ("nand", "nvme", "kstack", "net"):
            assert plan.injector(layer) is None

    def test_injector_only_for_active_layers(self):
        plan = FaultPlan(nand=NandFaults(read_fail_prob=0.1))
        assert plan.injector("nand") is not None
        assert plan.injector("nvme") is None

    def test_injector_streams_are_stable_and_distinct(self):
        plan = FaultPlan(seed=5, nand=NandFaults(read_fail_prob=0.5))
        a = [plan.injector("nand").rng.random() for _ in range(4)]
        b = [plan.injector("nand").rng.random() for _ in range(4)]
        assert a == b  # same seed/layer/index: same stream, any process
        other = [plan.injector("nand", index=1).rng.random() for _ in range(4)]
        assert a != other  # sibling instances never alias

    def test_params_round_trip(self):
        plan = FaultPlan(
            seed=9,
            nand=NandFaults(read_fail_prob=0.01, max_read_retries=5),
            nvme=NvmeFaults(timeout_prob=1e-3),
            kstack=KstackFaults(requeue_prob=0.02),
            net=NetFaults(flap_interval_ns=1_000_000),
        )
        assert FaultPlan.from_params(plan.to_params()) == plan

    def test_ambient_install_stack(self):
        assert active_plan() is None
        plan = FaultPlan(seed=1, nvme=NvmeFaults(timeout_prob=0.1))
        with plan.installed():
            assert active_plan() is plan
            # An inert plan installed on top does not shadow a live one.
            with FaultPlan().installed():
                assert active_plan() is plan
        assert active_plan() is None

    def test_parse_fault_spec(self):
        plan = parse_fault_spec(
            ["nand.read_fail_prob=0.01,nand.ecc_retry_ns=50_000",
             "nvme.timeout_prob=1e-3"],
            seed=3,
        )
        assert plan.seed == 3
        assert plan.nand.read_fail_prob == 0.01
        assert plan.nand.ecc_retry_ns == 50_000
        assert plan.nvme.timeout_prob == 1e-3

    def test_parse_fault_spec_rejects_garbage(self):
        with pytest.raises(ValueError, match="layer.field=value"):
            parse_fault_spec(["nonsense"])
        with pytest.raises(ValueError, match="unknown fault layer"):
            parse_fault_spec(["disk.fail=1"])
        with pytest.raises(ValueError, match="unknown fault field"):
            parse_fault_spec(["nand.explode_prob=1"])


class TestZeroFaultIdentity:
    """An inert plan must change nothing, byte for byte."""

    def test_inert_plan_matches_no_plan(self):
        bare, _ = run_ull(faults=None)
        inert, _ = run_ull(faults=FaultPlan())
        assert bare.latency.mean_ns == inert.latency.mean_ns
        assert bare.latency.p99999_ns == inert.latency.p99999_ns
        assert bare.duration_ns == inert.duration_ns

    def test_other_layers_unperturbed(self):
        # Enabling NVMe faults must not shift the NAND/pattern streams:
        # with timeout_prob so low no timeout fires, results are identical.
        bare, _ = run_ull(faults=None, io_count=150)
        armed, _ = run_ull(
            faults=FaultPlan(nvme=NvmeFaults(timeout_prob=1e-12)), io_count=150
        )
        assert bare.latency.mean_ns == armed.latency.mean_ns


class TestLayerBehavior:
    def test_nand_read_faults_retry_and_inflate_tail(self):
        plan = FaultPlan(seed=2, nand=NandFaults(read_fail_prob=0.05))
        clean, _ = run_ull()
        faulty, device = run_ull(plan)
        assert device.controller.stats.read_retries > 0
        assert faulty.latency.p99_ns > clean.latency.p99_ns
        assert faulty.latency.mean_ns > clean.latency.mean_ns

    def test_nand_program_faults_retire_blocks(self):
        plan = FaultPlan(seed=2, nand=NandFaults(program_fail_prob=0.02))
        _, device = run_ull(plan, rw="randwrite", io_count=400)
        assert device.controller.stats.program_fails > 0
        assert device.controller.stats.blocks_retired > 0

    def test_nvme_timeouts_cost_the_command_timer(self):
        plan = FaultPlan(seed=2, nvme=NvmeFaults(timeout_prob=0.02))
        clean, _ = run_ull()
        faulty, _ = run_ull(plan)
        assert faulty.latency.p99_ns >= plan.nvme.timeout_ns
        assert faulty.latency.mean_ns > clean.latency.mean_ns

    def test_kstack_requeues_back_off(self):
        plan = FaultPlan(seed=2, kstack=KstackFaults(requeue_prob=0.05))
        clean, _ = run_ull()
        faulty, _ = run_ull(plan)
        assert faulty.latency.p99_ns > clean.latency.p99_ns
        # backoff starts at 100us, far above the clean ~17us p99
        assert faulty.latency.p99_ns > 100_000

    def test_net_flaps_cut_nbd_throughput(self):
        from repro.core.runners import nbd_runner

        clean = nbd_runner(
            server="kernel-nbd", rw="read", block_size=65536, io_count=200
        )
        plan = FaultPlan(seed=2, net=NetFaults(flap_interval_ns=1_000_000))
        flappy = nbd_runner(
            server="kernel-nbd", rw="read", block_size=65536, io_count=200,
            fault_plan=plan.to_params(),
        )
        assert flappy.result.bandwidth_mbps < clean.result.bandwidth_mbps


class TestDeterminism:
    def test_fault_runs_are_bit_identical_across_repeats(self):
        plan = FaultPlan(
            seed=4,
            nand=NandFaults(read_fail_prob=0.02),
            nvme=NvmeFaults(timeout_prob=0.01),
            kstack=KstackFaults(requeue_prob=0.01),
        )

        def one():
            result, device = run_ull(plan, io_count=200)
            return (
                result.latency.mean_ns,
                result.latency.p99999_ns,
                result.duration_ns,
                device.controller.stats.read_retries,
            )

        assert one() == one()

    def test_seed_changes_the_fault_schedule(self):
        a, _ = run_ull(FaultPlan(seed=1, nand=NandFaults(read_fail_prob=0.05)))
        b, _ = run_ull(FaultPlan(seed=2, nand=NandFaults(read_fail_prob=0.05)))
        assert a.latency.mean_ns != b.latency.mean_ns


class TestSweepIntegration:
    def _spec(self, plan):
        points = [
            make_point(
                ("faulty", rate),
                "job",
                device="ull",
                rw="randread",
                engine="psync",
                io_count=150,
                fault_plan=plan.to_params() if rate else (),
            )
            for rate in (0, 1)
        ]
        return ExperimentSpec(name="fault-sweep-test", points=tuple(points))

    def test_parallel_matches_serial(self):
        plan = FaultPlan(seed=3, nand=NandFaults(read_fail_prob=0.05))
        spec = self._spec(plan)
        serial = SweepEngine(jobs=1).run(spec)
        parallel = SweepEngine(jobs=2).run(spec)
        for key in serial:
            assert (
                serial[key].result.latency.mean_ns
                == parallel[key].result.latency.mean_ns
            )
            assert serial[key].result.duration_ns == parallel[key].result.duration_ns

    def test_ambient_plan_reaches_workers(self):
        plan = FaultPlan(seed=3, nand=NandFaults(read_fail_prob=0.08))
        point = make_point(
            "ambient", "job", device="ull", rw="randread",
            engine="psync", io_count=150,
        )
        spec = ExperimentSpec(name="ambient-test", points=(point,))
        clean = SweepEngine(jobs=1).run(spec)["ambient"]
        with plan.installed():
            serial = SweepEngine(jobs=1).run(spec)["ambient"]
            parallel = SweepEngine(jobs=2).run(spec)["ambient"]
        assert serial.result.latency.mean_ns == parallel.result.latency.mean_ns
        assert serial.result.latency.mean_ns > clean.result.latency.mean_ns

    def test_ambient_plan_changes_cache_key(self):
        point = make_point(
            "k", "job", device="ull", rw="randread", engine="psync", io_count=100
        )
        bare = point_cache_key(point)
        with FaultPlan(seed=1, nand=NandFaults(read_fail_prob=0.01)).installed():
            armed = point_cache_key(point)
        # the fault-free key is unchanged (warm caches stay valid)...
        assert point_cache_key(point) == bare
        # ...and a live ambient plan keys its measurements separately.
        assert armed != bare

    def test_explicit_fault_plan_param_changes_cache_key(self):
        plan = FaultPlan(seed=1, nvme=NvmeFaults(timeout_prob=0.01))
        bare = make_point(
            "k", "job", device="ull", rw="randread", engine="psync", io_count=100
        )
        armed = make_point(
            "k", "job", device="ull", rw="randread", engine="psync",
            io_count=100, fault_plan=plan.to_params(),
        )
        assert point_cache_key(bare) != point_cache_key(armed)


class TestObservability:
    def test_faults_surface_as_counters_and_spans(self):
        from repro.obs.core import Observability

        plan = FaultPlan(
            seed=2,
            nand=NandFaults(read_fail_prob=0.05),
            kstack=KstackFaults(requeue_prob=0.05),
        )
        with Observability() as obs:
            result, device = run_ull(plan, io_count=250)
        assert "faults.nand.read_retries" in obs.registry
        retries = obs.registry.get("faults.nand.read_retries").value
        assert retries == device.controller.stats.read_retries > 0
        assert "faults.kstack.requeues" in obs.registry
        assert obs.registry.get("faults.kstack.requeues").value > 0
        fault_spans = [
            s for s in obs.tracer.track_spans if s.track == "faults"
        ]
        names = {s.name for s in fault_spans}
        assert "ecc_retry" in names
        assert "blkmq_requeue" in names

    def test_nvme_timeout_spans_and_counters(self):
        from repro.obs.core import Observability

        plan = FaultPlan(seed=2, nvme=NvmeFaults(timeout_prob=0.02))
        with Observability() as obs:
            run_ull(plan, io_count=250)
        assert obs.registry.get("faults.nvme.timeouts").value > 0
        names = {
            s.name for s in obs.tracer.track_spans if s.track == "faults"
        }
        assert "nvme_timeout" in names

    def test_zero_fault_run_registers_nothing(self):
        from repro.obs.core import Observability

        with Observability() as obs:
            run_ull(FaultPlan(), io_count=120)
        assert "faults.nand.read_retries" not in obs.registry
        assert "faults.nvme.timeouts" not in obs.registry
