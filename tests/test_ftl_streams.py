"""Tests for dual write streams (host vs. GC) and GC policies."""

import numpy as np
import pytest

from repro.ftl import (
    BlockAllocator,
    CostBenefitVictimPolicy,
    FtlLayout,
    PageMappedFtl,
    WriteStream,
)


def make_allocator():
    return BlockAllocator(FtlLayout(dies=1, blocks_per_die=6, pages_per_block=4))


class TestDualStreams:
    def test_streams_use_separate_blocks(self):
        allocator = make_allocator()
        host_page = allocator.allocate_page(0, WriteStream.HOST)
        gc_page = allocator.allocate_page(0, WriteStream.GC)
        layout = allocator.layout
        assert layout.block_of_page(host_page) != layout.block_of_page(gc_page)

    def test_streams_have_independent_write_pointers(self):
        allocator = make_allocator()
        allocator.allocate_page(0, WriteStream.HOST)
        allocator.allocate_page(0, WriteStream.GC)
        second_host = allocator.allocate_page(0, WriteStream.HOST)
        assert second_host % allocator.layout.pages_per_block == 1

    def test_default_stream_is_host(self):
        allocator = make_allocator()
        allocator.allocate_page(0)
        assert allocator.active_block(0, WriteStream.HOST) is not None
        assert allocator.active_block(0, WriteStream.GC) is None

    def test_is_active_covers_both_streams(self):
        allocator = make_allocator()
        allocator.allocate_page(0, WriteStream.HOST)
        allocator.allocate_page(0, WriteStream.GC)
        host_block = allocator.active_block(0, WriteStream.HOST)
        gc_block = allocator.active_block(0, WriteStream.GC)
        assert allocator.is_active(host_block)
        assert allocator.is_active(gc_block)

    def test_can_host_write_keeps_gc_reserve(self):
        allocator = make_allocator()
        # Exhaust down to two pool blocks via the host stream.
        while allocator.free_blocks(0) > 2 or allocator.remaining_in_active(0):
            allocator.allocate_page(0, WriteStream.HOST)
        assert allocator.can_host_write(0)
        allocator.allocate_page(0, WriteStream.HOST)  # opens, pool -> 1
        while allocator.remaining_in_active(0):
            allocator.allocate_page(0, WriteStream.HOST)
        assert not allocator.can_host_write(0)  # last block is GC-only

    def test_closed_at_tracks_allocation_clock(self):
        allocator = make_allocator()
        for _ in range(4):
            allocator.allocate_page(0, WriteStream.HOST)
        block = next(iter(allocator.closed_blocks(0)))
        assert allocator.closed_at(block) == 4
        assert allocator.sequence == 4


class TestCostBenefitPolicy:
    def make_ftl(self, policy):
        layout = FtlLayout(dies=1, blocks_per_die=8, pages_per_block=4)
        return PageMappedFtl(
            layout, overprovision=0.25, gc_watermark_blocks=2, gc_policy=policy
        )

    def test_policy_selection_by_name(self):
        ftl = self.make_ftl("cost-benefit")
        assert isinstance(ftl.victim_policy, CostBenefitVictimPolicy)
        with pytest.raises(ValueError):
            self.make_ftl("lru")

    def test_prefers_old_cold_block_over_young_equal_block(self):
        ftl = self.make_ftl("cost-benefit")
        # Block A: filled early, 2 valid.  Block B: filled late, 2 valid.
        for lpn in range(8):
            ftl.write_to_die(lpn, 0)  # closes blocks 0 and 1 (A young? no: 0 older)
        for lpn in (0, 1):  # invalidate half of block 0
            ftl.write_to_die(lpn, 0)
        for lpn in (4, 5):  # invalidate half of block 1 (same valid count)
            ftl.write_to_die(lpn, 0)
        victim = ftl.victim_policy.select(0, ftl.mapping, ftl.allocator)
        assert victim == 0  # equal utilization -> the older block wins

    def test_empty_block_is_a_free_win(self):
        ftl = self.make_ftl("cost-benefit")
        for lpn in range(8):
            ftl.write_to_die(lpn, 0)
        for lpn in range(4):  # block 0 fully invalid
            ftl.write_to_die(lpn, 0)
        victim = ftl.victim_policy.select(0, ftl.mapping, ftl.allocator)
        assert victim == 0
        assert ftl.mapping.valid_count(victim) == 0

    def test_fully_valid_blocks_never_selected(self):
        ftl = self.make_ftl("cost-benefit")
        for lpn in range(8):
            ftl.write_to_die(lpn, 0)
        assert ftl.victim_policy.select(0, ftl.mapping, ftl.allocator) is None


class TestStreamSeparationEndToEnd:
    def _skewed_run(self, policy: str) -> PageMappedFtl:
        layout = FtlLayout(dies=2, blocks_per_die=10, pages_per_block=8)
        ftl = PageMappedFtl(
            layout, overprovision=0.25, gc_watermark_blocks=2, gc_policy=policy
        )
        for lpn in range(ftl.logical_pages):
            ftl.write(lpn)
        rng = np.random.default_rng(3)
        hot = max(1, ftl.logical_pages // 5)
        for _ in range(4000):
            while True:
                progressed = False
                for die in ftl.dies_needing_gc():
                    plan = ftl.plan_gc(die)
                    if plan is None:
                        continue
                    for lpn in plan.victim_lpns:
                        if ftl.still_in_block(lpn, plan.victim_block):
                            ftl.relocate(lpn, die)
                    ftl.finish_gc(plan)
                    progressed = True
                if not progressed:
                    break
            if rng.random() < 0.9:
                ftl.write(int(rng.integers(0, hot)))
            else:
                ftl.write(int(rng.integers(hot, ftl.logical_pages)))
        ftl.mapping.check_invariants()
        return ftl

    def test_policies_converge_once_streams_separate(self):
        """With host/GC stream separation, migrated cold data settles in
        near-fully-valid blocks that neither policy ever selects, so
        victims are always freshly-invalidated hot blocks and the two
        policies end up within a few percent of each other — stream
        separation, not victim scoring, carries the skew win."""
        greedy = self._skewed_run("greedy")
        cost_benefit = self._skewed_run("cost-benefit")
        ratio = cost_benefit.write_amplification() / greedy.write_amplification()
        assert 0.85 < ratio < 1.15
        assert greedy.gc_runs > 100 and cost_benefit.gc_runs > 100
