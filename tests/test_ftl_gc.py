"""Tests for GC victim selection and the full FTL reclamation cycle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ftl import FtlLayout, PageMappedFtl


def make_ftl(**kwargs) -> PageMappedFtl:
    layout = FtlLayout(dies=2, blocks_per_die=6, pages_per_block=4)
    kwargs.setdefault("overprovision", 0.25)
    kwargs.setdefault("gc_watermark_blocks", 2)
    return PageMappedFtl(layout, **kwargs)


class TestWritePath:
    def test_writes_stripe_round_robin(self):
        ftl = make_ftl()
        dies = [ftl.write(lpn).die for lpn in range(4)]
        assert dies == [0, 1, 0, 1]

    def test_overwrite_invalidates_previous(self):
        ftl = make_ftl()
        first = ftl.write(0)
        second = ftl.write(0)
        assert second.previous_ppa == first.ppa
        assert ftl.read_ppa(0) == second.ppa

    def test_read_unwritten_returns_none(self):
        assert make_ftl().read_ppa(0) is None

    def test_capacity_respects_overprovision(self):
        ftl = make_ftl()
        assert ftl.logical_pages == int(ftl.layout.total_pages * 0.75)
        assert ftl.capacity_bytes == ftl.logical_pages * ftl.layout.unit_size

    def test_still_in_block(self):
        ftl = make_ftl()
        placement = ftl.write(0)
        block = ftl.layout.block_of_page(placement.ppa)
        assert ftl.still_in_block(0, block)
        assert not ftl.still_in_block(0, block + 1)
        assert not ftl.still_in_block(1, block)

    def test_validation(self):
        layout = FtlLayout(dies=1, blocks_per_die=6, pages_per_block=4)
        with pytest.raises(ValueError):
            PageMappedFtl(layout, overprovision=0.0)
        with pytest.raises(ValueError):
            PageMappedFtl(layout, gc_watermark_blocks=0)
        with pytest.raises(ValueError):
            PageMappedFtl(
                FtlLayout(dies=1, blocks_per_die=3, pages_per_block=4),
                gc_watermark_blocks=2,
            )


class TestVictimSelection:
    def test_greedy_picks_min_valid(self):
        ftl = make_ftl()
        # Fill two blocks on die 0 via direct placement.
        for lpn in range(8):
            ftl.write_to_die(lpn, 0)
        ftl.write_to_die(8, 0)  # opens block 2, closes blocks 0 and 1
        # Invalidate 3 of 4 pages of block 1, 1 of 4 of block 0.
        for lpn in (4, 5, 6):
            ftl.write_to_die(lpn, 0)
        ftl.write_to_die(0, 0)
        plan = ftl.plan_gc(0)
        assert plan is not None
        assert ftl.mapping.valid_count(plan.victim_block) == 1
        assert plan.victim_lpns == [7]

    def test_no_victim_when_nothing_closed(self):
        ftl = make_ftl()
        ftl.write(0)
        assert ftl.plan_gc(0) is None


class TestReclamationCycle:
    def test_full_cycle_frees_a_block(self):
        ftl = make_ftl()
        for lpn in range(8):
            ftl.write_to_die(lpn, 0)
        ftl.write_to_die(8, 0)
        for lpn in range(4):  # invalidate block 0 partially
            ftl.write_to_die(lpn, 0)
        free_before = ftl.allocator.free_blocks(0)
        plan = ftl.plan_gc(0)
        for lpn in plan.victim_lpns:
            ftl.relocate(lpn, 0)
        ftl.finish_gc(plan)
        assert ftl.allocator.free_blocks(0) == free_before + 1
        assert ftl.gc_runs == 1
        ftl.mapping.check_invariants()

    def test_finish_gc_with_valid_pages_rejected(self):
        ftl = make_ftl()
        for lpn in range(8):
            ftl.write_to_die(lpn, 0)
        ftl.write_to_die(8, 0)
        ftl.write_to_die(0, 0)  # partially invalidate block 0
        plan = ftl.plan_gc(0)
        assert plan is not None
        with pytest.raises(ValueError):
            ftl.finish_gc(plan)  # remaining valid pages not migrated

    def test_fully_valid_block_is_never_a_victim(self):
        ftl = make_ftl()
        for lpn in range(8):
            ftl.write_to_die(lpn, 0)
        ftl.write_to_die(8, 0)  # blocks 0 and 1 closed, fully valid
        assert ftl.plan_gc(0) is None  # collecting them would gain nothing

    def test_write_amplification_counts_gc_writes(self):
        ftl = make_ftl()
        for lpn in range(8):
            ftl.write_to_die(lpn, 0)
        ftl.write_to_die(8, 0)
        for lpn in range(3):  # leave one valid page to migrate
            ftl.write_to_die(lpn, 0)
        plan = ftl.plan_gc(0)
        for lpn in plan.victim_lpns:
            ftl.relocate(lpn, 0)
        ftl.finish_gc(plan)
        assert ftl.write_amplification() > 1.0

    def test_reset_statistics(self):
        ftl = make_ftl()
        ftl.write(0)
        ftl.reset_statistics()
        assert ftl.host_writes == 0
        assert ftl.write_amplification() == 1.0


class TestSustainedOverwrites:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_property_gc_sustains_unbounded_overwrites(self, seed):
        """With GC driven at the watermark, the FTL never runs out of
        space and never corrupts its mapping, for any overwrite order."""
        import numpy as np

        rng = np.random.default_rng(seed)
        ftl = make_ftl()
        for lpn in range(ftl.logical_pages):
            ftl.write(lpn)
        for _ in range(300):
            # Drive GC to the watermark (what the flush workers do).
            progressing = True
            while progressing and ftl.dies_needing_gc():
                progressing = False
                for die in ftl.dies_needing_gc():
                    plan = ftl.plan_gc(die)
                    if plan is None:
                        continue
                    for lpn in plan.victim_lpns:
                        if ftl.still_in_block(lpn, plan.victim_block):
                            ftl.relocate(lpn, die)
                    ftl.finish_gc(plan)
                    progressing = True
            ftl.write(int(rng.integers(0, ftl.logical_pages)))
        ftl.mapping.check_invariants()
        # Every logical page still resolves to exactly one valid PPA.
        for lpn in range(ftl.logical_pages):
            assert ftl.read_ppa(lpn) is not None
