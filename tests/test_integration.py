"""Cross-stack integration tests: end-to-end invariants on the presets."""


from repro import (
    CompletionMethod,
    DeviceKind,
    FioJob,
    IoEngineKind,
    KernelStack,
    Simulator,
    SpdkStack,
    SsdDevice,
    StackKind,
    build_device,
    run_job,
)
from repro.api import JobConfig, Testbed
from repro.ssd.registry import resolve_config


def sync_job(device, rw, *, io_count, block_size=4096, stack="kernel",
             completion="interrupt", seed=42):
    testbed = Testbed(
        device=device, stack=stack, completion=completion,
        device_seed=seed, stack_seed=seed,
    )
    return testbed.run_job(JobConfig(
        rw=rw, engine="psync", block_size=block_size, io_count=io_count,
        seed=seed,
    ))


def async_job(device, rw, *, iodepth=1, io_count, write_fraction=0.5,
              seed=42, want_device=False):
    testbed = Testbed(device=device, device_seed=seed, stack_seed=11)
    return testbed.run_job(
        JobConfig(
            rw=rw, engine="libaio", iodepth=iodepth, io_count=io_count,
            write_fraction=write_fraction, seed=seed,
        ),
        want_device=want_device,
    )


class TestLatencyOrdering:
    """SPDK < poll < interrupt must hold on the ULL SSD end to end."""

    def test_stack_ordering_on_ull(self):
        interrupt = sync_job(DeviceKind.ULL, "read", io_count=400)
        poll = sync_job(
            DeviceKind.ULL, "read", io_count=400, completion=CompletionMethod.POLL
        )
        spdk = sync_job(
            DeviceKind.ULL, "read", io_count=400, stack=StackKind.SPDK
        )
        assert spdk.latency.mean_ns < poll.latency.mean_ns < interrupt.latency.mean_ns

    def test_device_ordering_random_reads(self):
        ull = sync_job(DeviceKind.ULL, "randread", io_count=300)
        nvme = sync_job(DeviceKind.NVME, "randread", io_count=300)
        assert nvme.latency.mean_ns > 3 * ull.latency.mean_ns

    def test_block_size_monotonicity(self):
        """Bigger requests take longer on every stack."""
        previous = 0.0
        for block_size in (4096, 16384, 65536):
            result = sync_job(
                DeviceKind.ULL, "read", block_size=block_size, io_count=200
            )
            assert result.latency.mean_ns > previous
            previous = result.latency.mean_ns


class TestThroughputSaturation:
    def test_ull_saturates_by_qd16(self):
        at_8 = async_job(DeviceKind.ULL, "read", iodepth=8, io_count=1500)
        at_32 = async_job(DeviceKind.ULL, "read", iodepth=32, io_count=1500)
        assert at_32.bandwidth_mbps < 1.2 * at_8.bandwidth_mbps

    def test_nvme_still_scaling_past_qd16(self):
        at_8 = async_job(DeviceKind.NVME, "randread", iodepth=8, io_count=1500)
        at_64 = async_job(DeviceKind.NVME, "randread", iodepth=64, io_count=1500)
        assert at_64.bandwidth_mbps > 2.5 * at_8.bandwidth_mbps


class TestDeviceConsistencyUnderLoad:
    def test_mixed_workload_preserves_ftl_invariants(self):
        result, device = async_job(
            DeviceKind.ULL, "randrw", iodepth=16, io_count=4000,
            write_fraction=0.5, want_device=True,
        )
        device.ftl.mapping.check_invariants()
        assert result.latency.count == 4000

    def test_nvme_gc_storm_completes_all_ios(self):
        # The preset leaves ~4 erased blocks per die after precondition;
        # ~25k overwrites push every die past the GC watermark.
        result, device = async_job(
            DeviceKind.NVME, "randwrite", iodepth=8, io_count=30000,
            want_device=True,
        )
        assert result.latency.count == 30000
        assert device.stats.gc_events, "overwrite storm must trigger GC"
        device.ftl.mapping.check_invariants()

    def test_power_always_at_least_idle(self):
        result, device = async_job(
            DeviceKind.ULL, "randwrite", iodepth=8, io_count=2000,
            want_device=True,
        )
        values = device.power.series.values
        assert (values >= device.config.power.idle_w - 1e-9).all()


class TestDeterminism:
    def test_full_stack_runs_are_bit_identical(self):
        def one_run():
            sim = Simulator()
            device = SsdDevice(sim, resolve_config("ull"), seed=3)
            device.precondition()
            stack = KernelStack(
                sim, device, completion=CompletionMethod.HYBRID, seed=3
            )
            job = FioJob(name="d", rw="randrw", io_count=300, seed=3)
            result = run_job(sim, stack, job)
            return (
                result.latency.mean_ns,
                result.latency.p99999_ns,
                result.duration_ns,
                stack.accounting.total_loads(),
            )

        assert one_run() == one_run()

    def test_spdk_runs_are_bit_identical(self):
        def one_run():
            sim = Simulator()
            device = SsdDevice(sim, resolve_config("nvme"), seed=4)
            device.precondition()
            stack = SpdkStack(sim, device)
            job = FioJob(
                name="d", rw="randread", io_count=200,
                engine=IoEngineKind.SPDK, seed=4,
            )
            result = run_job(sim, stack, job)
            return result.latency.mean_ns, stack.accounting.total_stores()

        assert one_run() == one_run()


class TestPresetSanity:
    def test_preset_capacities(self):
        sim = Simulator()
        ull = build_device(sim, DeviceKind.ULL, precondition=0.0)
        nvme = build_device(sim, DeviceKind.NVME, precondition=0.0)
        # Scaled-down but non-trivial devices.
        assert 100 << 20 < ull.capacity_bytes < 1 << 30
        assert 100 << 20 < nvme.capacity_bytes < 2 << 30

    def test_ull_has_more_overprovision(self):
        assert resolve_config("ull").overprovision > resolve_config("nvme").overprovision

    def test_bandwidth_scale_matches_devices(self):
        """ULL peaks near PCIe (~2.7 GB/s here); NVMe near 1.8 GB/s."""
        ull = async_job(DeviceKind.ULL, "read", iodepth=32, io_count=3000)
        nvme = async_job(DeviceKind.NVME, "randread", iodepth=256, io_count=8000)
        assert ull.bandwidth_mbps > 2300
        assert 1300 < nvme.bandwidth_mbps < 2100
