"""Tests for time-series telemetry: digests, rings, determinism, exports."""

import math
import random

import pytest

from repro.core.runners import config_point
from repro.core.sweep import ExperimentSpec, SweepEngine, point_cache_key
from repro.obs import (
    NULL_SERIES,
    Observability,
    TailDigest,
    Telemetry,
    TelemetryConfig,
    TimeSeries,
    atomic_write_text,
    chrome_trace_events,
    telemetry_counter_events,
    telemetry_report_html,
    telemetry_to_csv,
    telemetry_to_text,
    write_telemetry_csv,
)

#: Small-device overrides that force GC within ~2 ms of simulated time.
GC_OVERRIDES = (
    ("channels", 1),
    ("ways_per_channel", 2),
    ("blocks_per_die", 16),
    ("pages_per_block", 32),
    ("write_buffer_units", 32),
)


def gc_point(io_count=1500, key="gc", **extra):
    return config_point(
        "ull",
        "randwrite",
        io_count=io_count,
        config_overrides=GC_OVERRIDES,
        want_device=True,
        key=key,
        **extra,
    )


# ----------------------------------------------------------------------
# TailDigest
# ----------------------------------------------------------------------
class TestTailDigest:
    def test_quantiles_within_bucket_error(self):
        """Digest quantiles stay within the log2-bucket midpoint bound
        of the exact (same rank convention) quantile."""
        rng = random.Random(7)
        values = [rng.lognormvariate(3.0, 1.5) for _ in range(5000)]
        digest = TailDigest()
        for value in values:
            digest.observe(value)
        ordered = sorted(values)
        for q in (0.5, 0.9, 0.95, 0.99, 0.999):
            exact = ordered[max(0, math.ceil(q * len(values)) - 1)]
            estimate = digest.quantile(q)
            assert 0.75 <= estimate / exact <= 1.5, (q, estimate, exact)

    def test_zeros_have_their_own_bucket(self):
        digest = TailDigest()
        for _ in range(90):
            digest.observe(0.0)
        for _ in range(10):
            digest.observe(100.0)
        assert digest.quantile(0.5) == 0.0
        assert digest.quantile(0.99) > 50.0
        assert digest.count == 100

    def test_observe_many_equals_repeated_observe(self):
        bulk, slow = TailDigest(), TailDigest()
        bulk.observe_many(3.5, 1000)
        for _ in range(1000):
            slow.observe(3.5)
        assert bulk.to_dict() == slow.to_dict()

    def test_merge_is_exact(self):
        rng = random.Random(11)
        values = [rng.uniform(0, 50) for _ in range(400)]
        whole = TailDigest()
        left, right = TailDigest(), TailDigest()
        for index, value in enumerate(values):
            whole.observe(value)
            (left if index % 2 else right).observe(value)
        left.merge(right)
        merged, direct = left.to_dict(), whole.to_dict()
        # Summation order differs between the shard and direct paths, so
        # the mean may differ in the last ulp; everything else is exact.
        assert merged.pop("mean") == pytest.approx(direct.pop("mean"))
        assert merged == direct

    def test_mean_min_max_are_exact(self):
        digest = TailDigest()
        for value in (1.0, 2.0, 6.0):
            digest.observe(value)
        assert digest.mean == 3.0
        assert digest.min == 1.0
        assert digest.max == 6.0


# ----------------------------------------------------------------------
# TimeSeries semantics
# ----------------------------------------------------------------------
class TestTimeSeriesKinds:
    def test_level_is_time_weighted_mean(self):
        series = TimeSeries("q", "level", period_ns=100)
        series.record(0, 4.0)
        series.record(50, 0.0)
        series.record(100, 0.0)  # close bucket 0
        samples = dict(series.samples())
        assert samples[0] == 2.0  # 4.0 held half the period

    def test_rate_sums_per_bucket(self):
        series = TimeSeries("ev", "rate", period_ns=100)
        series.add(10, 3)
        series.add(90, 2)
        series.add(150, 1)
        assert dict(series.samples()) == {0: 5.0, 100: 1.0}

    def test_busy_fraction_with_scale(self):
        series = TimeSeries("die", "busy", period_ns=100, scale=2)
        series.add_interval(0, 150)
        samples = dict(series.samples())
        assert samples[0] == 0.5  # 100ns busy / (100ns * 2 dies)
        assert samples[100] == 0.25

    def test_busy_tolerates_out_of_order_intervals(self):
        series = TimeSeries("die", "busy", period_ns=100)
        series.add_interval(200, 300)
        series.add_interval(0, 100)
        assert dict(series.samples()) == {0: 1.0, 200: 1.0}

    def test_kind_validation(self):
        with pytest.raises(ValueError):
            TimeSeries("x", "bogus")


class TestRingTruncation:
    def test_old_buckets_fold_into_digest(self):
        series = TimeSeries("ev", "rate", period_ns=10, capacity=8)
        for t in range(0, 1000, 10):
            series.add(t, 1)
        assert len(series) <= 8
        assert series.dropped == 100 - len(series)
        digest = series.digest()
        assert digest.count == 100  # every sample ever taken
        times = [t for t, _v in series.samples()]
        assert times == sorted(times)
        assert min(times) >= 990 - 8 * 10

    def test_long_idle_level_does_not_materialize_buckets(self):
        series = TimeSeries("q", "level", period_ns=10, capacity=16)
        series.record(0, 1.0)
        series.record(5_000_000, 0.0)  # 500k periods later
        assert len(series) <= 16 + 1
        assert series.digest().count >= 499_000

    def test_onset_survives_eviction(self):
        series = TimeSeries("gc", "rate", period_ns=10, capacity=4)
        series.add(25, 1)
        for t in range(1000, 2000, 10):
            series.add(t, 1)
        assert series.first_active_ns() == 20
        assert min(t for t, _v in series.samples()) >= 1000

    def test_onset_none_when_never_nonzero(self):
        series = TimeSeries("gc", "level", period_ns=10)
        series.record(0, 0.0)
        series.record(100, 0.0)
        assert series.first_active_ns() is None


# ----------------------------------------------------------------------
# Recorder
# ----------------------------------------------------------------------
class TestTelemetryRecorder:
    def test_series_scoped_per_sim(self):
        telemetry = Telemetry()
        telemetry.new_sim()
        first = telemetry.series("q", "level")
        telemetry.new_sim()
        second = telemetry.series("q", "level")
        assert first is not second
        assert (first.pid, second.pid) == (1, 2)

    def test_kind_conflict_raises(self):
        telemetry = Telemetry()
        telemetry.new_sim()
        telemetry.series("q", "level")
        with pytest.raises(TypeError):
            telemetry.series("q", "rate")

    def test_config_prefix_filter(self):
        telemetry = Telemetry(TelemetryConfig(series=("ssd.",)))
        telemetry.new_sim()
        assert telemetry.series("ssd.dies.busy", "busy") is not NULL_SERIES
        assert telemetry.series("nvme.q0.sq", "level") is NULL_SERIES

    def test_absorb_rebases_pids(self):
        parent = Telemetry()
        parent.new_sim()
        parent.series("q", "level").record(0, 1.0)
        worker = Telemetry()
        worker.new_sim()
        worker.series("q", "level").record(0, 2.0)
        worker.new_sim()
        worker.series("q", "level").record(0, 3.0)
        parent.absorb(worker)
        assert sorted(series.pid for series in parent) == [1, 2, 3]
        assert parent.current_pid == 3

    def test_config_params_round_trip(self):
        config = TelemetryConfig(period_ns=5000, capacity=64, series=("a", "b"))
        clone = TelemetryConfig.from_params(config.to_params())
        assert clone.to_params() == config.to_params()


# ----------------------------------------------------------------------
# Cache-key folding
# ----------------------------------------------------------------------
class TestCacheKeyFolding:
    def test_telemetry_config_changes_the_key(self):
        point = config_point("ull", "randread", io_count=10, key="k")
        bare = point_cache_key(point)
        with Observability(telemetry=TelemetryConfig(period_ns=5000)):
            five = point_cache_key(point)
        with Observability(telemetry=TelemetryConfig(period_ns=20000)):
            twenty = point_cache_key(point)
        assert len({bare, five, twenty}) == 3

    def test_telemetry_off_keeps_historical_keys(self):
        point = config_point("ull", "randread", io_count=10, key="k")
        bare = point_cache_key(point)
        with Observability():  # tracing only, no telemetry
            assert point_cache_key(point) == bare


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def toy_telemetry():
    telemetry = Telemetry(TelemetryConfig(period_ns=100))
    telemetry.new_sim()
    queue = telemetry.series("q.depth", "level", unit="reqs")
    queue.record(0, 2.0)
    queue.record(150, 4.0)
    queue.record(400, 0.0)
    moved = telemetry.series("gc.moved", "rate", unit="pages")
    moved.add(120, 8)
    return telemetry


class TestExporters:
    def test_atomic_write_creates_parents(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(target, "hello")
        assert target.read_text() == "hello"
        assert not list(target.parent.glob("*.tmp"))

    def test_csv_shape(self):
        text = telemetry_to_csv(toy_telemetry())
        lines = text.strip().splitlines()
        assert lines[0] == "pid,series,kind,unit,t_ns,value"
        assert any(line.startswith("1,q.depth,level,reqs,") for line in lines)
        # Samples are bucketed to period starts, not raw update times.
        assert "1,gc.moved,rate,pages,100,8" in lines

    def test_write_csv_creates_parents(self, tmp_path):
        target = tmp_path / "deep" / "telemetry.csv"
        write_telemetry_csv(toy_telemetry(), target)
        assert target.exists()

    def test_counter_events_in_chrome_trace(self):
        from repro.obs import SpanTracer

        tracer = SpanTracer()
        tracer.new_sim()
        telemetry = toy_telemetry()
        events = chrome_trace_events(tracer, telemetry)
        counters = [event for event in events if event["ph"] == "C"]
        assert counters == telemetry_counter_events(telemetry)
        assert {event["cat"] for event in counters} == {"telemetry"}
        assert all("value" in event["args"] for event in counters)
        # Disabled/absent telemetry contributes nothing.
        assert telemetry_counter_events(None) == []

    def test_text_summary_lists_series(self):
        text = telemetry_to_text(toy_telemetry())
        assert "q.depth" in text and "gc.moved" in text
        assert "(no telemetry series recorded)" == telemetry_to_text(Telemetry())

    def test_html_report_structure_and_determinism(self):
        telemetry = toy_telemetry()
        first = telemetry_report_html(telemetry)
        second = telemetry_report_html(telemetry)
        assert first == second  # pure function of content
        assert "<svg" in first and "viz-root" in first
        assert "Table view" in first
        assert "q.depth" in first
        assert "NaN" not in first

    def test_html_report_empty(self):
        text = telemetry_report_html(Telemetry())
        assert "no telemetry series recorded" in text


# ----------------------------------------------------------------------
# End-to-end: sampler determinism and GC onset
# ----------------------------------------------------------------------
class TestSamplerEndToEnd:
    def run_points(self, jobs):
        obs = Observability(telemetry=TelemetryConfig(period_ns=10_000))
        with obs:
            engine = SweepEngine(jobs=jobs)
            points = tuple(
                gc_point(io_count=300, key=("gc", qd), iodepth=qd,
                         engine="libaio")
                for qd in (1, 4)
            )
            engine.run(ExperimentSpec(name="telem-det", points=points))
        return obs.telemetry

    def test_parallel_telemetry_identical_to_serial(self):
        serial = self.run_points(jobs=1)
        parallel = self.run_points(jobs=4)
        assert telemetry_to_csv(serial) == telemetry_to_csv(parallel)
        assert telemetry_report_html(serial) == telemetry_report_html(parallel)

    def test_gc_onset_matches_first_gc_span(self):
        obs = Observability(telemetry=TelemetryConfig(period_ns=10_000))
        with obs:
            engine = SweepEngine(jobs=1)
            engine.run(ExperimentSpec(name="gc-onset", points=(gc_point(),)))
        telemetry = obs.telemetry
        gc_active = telemetry.get("ftl.gc.active")
        onset = gc_active.first_active_ns()
        assert onset is not None, "GC never engaged"
        gc_spans = [
            span for span in obs.tracer.track_spans if span.name == "gc"
        ]
        assert gc_spans, "no GC spans traced"
        first_span_start = min(span.start_ns for span in gc_spans)
        assert onset <= first_span_start < onset + gc_active.period_ns
        # Queue-depth and buffer series recorded alongside.
        assert telemetry.get("ssd.write_buffer.occupancy").samples()
        assert telemetry.get("nvme.q0.sq_occupancy").samples()
        assert telemetry.get("ssd.dies.busy").samples()
