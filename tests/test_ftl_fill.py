"""Differential tests for the bulk sequential fill (preconditioning).

``PageMappedFtl.fill_sequential`` applies the closed-form state of a
sequential host-write loop on a pristine FTL.  These tests pin the only
property that matters: the resulting FTL state is *indistinguishable*
(through the public API) from running the write loop, across geometries,
fractions, GC policies, and the fallback path.
"""

import pytest

from repro.ftl import FtlLayout, PageMappedFtl, WriteStream
from repro.ftl.mapping import UNMAPPED


def make_ftl(dies=2, blocks_per_die=16, pages_per_block=8, **kwargs):
    layout = FtlLayout(
        dies=dies, blocks_per_die=blocks_per_die, pages_per_block=pages_per_block
    )
    return PageMappedFtl(layout, **kwargs)


def snapshot(ftl):
    """Full public-API view of the FTL state after a fill."""
    layout = ftl.layout
    mapping = ftl.mapping
    allocator = ftl.allocator
    return {
        "l2p": [mapping.lookup(lpn) for lpn in range(ftl.logical_pages)],
        "p2l": [mapping.owner(ppa) for ppa in range(layout.total_pages)],
        "state": [mapping.state(ppa) for ppa in range(layout.total_pages)],
        "valid": [mapping.valid_count(b) for b in range(layout.total_blocks)],
        "mapped": mapping.mapped_lpn_count,
        "free": [allocator.free_blocks(d) for d in range(layout.dies)],
        "active_host": [
            allocator.active_block(d, WriteStream.HOST) for d in range(layout.dies)
        ],
        "active_gc": [
            allocator.active_block(d, WriteStream.GC) for d in range(layout.dies)
        ],
        "remaining": [
            allocator.remaining_in_active(d, WriteStream.HOST)
            for d in range(layout.dies)
        ],
        "closed": [allocator.closed_blocks(d) for d in range(layout.dies)],
        "closed_at": {
            b: allocator.closed_at(b)
            for d in range(layout.dies)
            for b in allocator.closed_blocks(d)
        },
        "sequence": allocator.sequence,
        "next_die": allocator.next_die(),  # reveals the stripe cursor
        "host_writes": ftl.host_writes,
        "gc_writes": ftl.gc_writes,
    }


GEOMETRIES = [
    # (dies, blocks_per_die, pages_per_block) — odd shapes on purpose:
    # die counts that do not divide the fill, partial tail blocks.
    (1, 16, 8),
    (2, 16, 8),
    (3, 9, 7),
    (4, 12, 16),
    (8, 32, 4),
]


@pytest.mark.parametrize("geometry", GEOMETRIES)
@pytest.mark.parametrize("fraction", [0.0, 0.1, 0.33, 0.5, 0.875, 1.0])
def test_fill_matches_write_loop(geometry, fraction):
    dies, blocks_per_die, pages_per_block = geometry
    bulk = make_ftl(dies, blocks_per_die, pages_per_block)
    loop = make_ftl(dies, blocks_per_die, pages_per_block)
    count = int(bulk.logical_pages * fraction)
    assert bulk.fill_sequential(count) == count
    for lpn in range(count):
        loop.write(lpn)
    assert snapshot(bulk) == snapshot(loop)
    bulk.mapping.check_invariants()


def test_fill_falls_back_when_the_guard_fails():
    # The guard is exact: it fails precisely when the busiest die needs
    # more than its blocks_per_die - 1 host-writable blocks, which on a
    # pristine FTL means the write loop itself runs out of space (every
    # die has the same capacity and round-robin load).  The fallback
    # must reproduce that failure — and the partial state — exactly.
    from repro.ftl.allocator import OutOfSpace

    kwargs = dict(overprovision=0.15, gc_watermark_blocks=1)
    bulk = make_ftl(dies=4, blocks_per_die=4, pages_per_block=8, **kwargs)
    loop = make_ftl(dies=4, blocks_per_die=4, pages_per_block=8, **kwargs)
    count = bulk.logical_pages
    busiest = -(-count // 4)
    assert -(-busiest // 8) > 4 - 1  # guard really fails for this shape
    with pytest.raises(OutOfSpace):
        bulk.fill_sequential(count)
    with pytest.raises(OutOfSpace):
        for lpn in range(count):
            loop.write(lpn)
    assert snapshot(bulk) == snapshot(loop)


def test_fill_falls_back_on_non_pristine_ftl():
    bulk = make_ftl()
    loop = make_ftl()
    for ftl in (bulk, loop):
        ftl.write(7)  # dirty: one page on die 0, stripe cursor moved
    bulk.fill_sequential(40)
    for lpn in range(40):
        loop.write(lpn)
    assert snapshot(bulk) == snapshot(loop)


def test_fill_rejects_bad_counts():
    ftl = make_ftl()
    with pytest.raises(ValueError):
        ftl.fill_sequential(-1)
    with pytest.raises(ValueError):
        ftl.fill_sequential(ftl.logical_pages + 1)


def test_fill_zero_is_a_noop():
    ftl = make_ftl()
    assert ftl.fill_sequential(0) == 0
    assert ftl.mapping.mapped_lpn_count == 0
    assert ftl.allocator.is_pristine()


def test_pristine_checks():
    ftl = make_ftl()
    assert ftl.mapping.is_pristine()
    assert ftl.allocator.is_pristine()
    ftl.write(0)
    assert not ftl.mapping.is_pristine()
    assert not ftl.allocator.is_pristine()
    ftl.trim(0)
    # A bind/trim pair leaves an INVALID page: still not pristine even
    # though the mapped count is back to zero.
    assert ftl.mapping.mapped_lpn_count == 0
    assert not ftl.mapping.is_pristine()


def test_fill_then_overwrite_behaves_like_preconditioned_drive():
    bulk = make_ftl()
    loop = make_ftl()
    count = bulk.logical_pages
    bulk.fill_sequential(count)
    for lpn in range(count):
        loop.write(lpn)
    # Drive both through an identical overwrite burst (triggers real
    # allocation decisions against the filled state; small enough to
    # fit the post-fill free space without GC).
    for ftl in (bulk, loop):
        for lpn in range(0, 36, 3):
            ftl.write(lpn)
    assert snapshot(bulk) == snapshot(loop)
    assert [ftl.read_ppa(1) for ftl in (bulk, loop)] == [bulk.read_ppa(1)] * 2


def test_unmapped_tail_stays_unmapped():
    ftl = make_ftl()
    half = ftl.logical_pages // 2
    ftl.fill_sequential(half)
    assert ftl.mapping.lookup(ftl.logical_pages - 1) == UNMAPPED
    assert ftl.read_ppa(ftl.logical_pages - 1) is None
