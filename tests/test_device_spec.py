"""Tests for the declarative device-spec schema (repro.ssd.spec).

Covers the single-error contract — every invalid spec raises one
:class:`DeviceSpecError` naming source, key path, and offending value,
never a mid-construction traceback — plus canonical hashing and the
spec -> TOML -> spec round trip.
"""

import json

import pytest

from repro.ssd.config import SsdConfig
from repro.ssd.presets import build_nvme_preset, build_ull_preset
from repro.ssd.spec import (
    DeviceSpec,
    DeviceSpecError,
    spec_from_config,
)

MINIMAL = {
    "schema": 1,
    "name": "dev",
    "timing": {
        "name": "T",
        "read_ns": 3000,
        "program_ns": 100000,
        "erase_ns": 1000000,
        "bus_mbps": 1200,
    },
    "geometry": {
        "channels": 8,
        "ways_per_channel": 2,
        "blocks_per_die": 64,
        "pages_per_block": 256,
    },
}


def mutate(**sections):
    """MINIMAL with per-section key overrides merged in."""
    doc = {k: (dict(v) if isinstance(v, dict) else v) for k, v in MINIMAL.items()}
    for section, table in sections.items():
        if isinstance(table, dict):
            doc.setdefault(section, {}).update(table)
        else:
            doc[section] = table
    return doc


class TestValidation:
    def test_minimal_spec_builds_a_config(self):
        spec = DeviceSpec.from_mapping(MINIMAL, source="<test>")
        config = spec.to_ssd_config()
        assert isinstance(config, SsdConfig)
        assert config.channels == 8

    def test_unknown_top_level_key(self):
        with pytest.raises(DeviceSpecError) as err:
            DeviceSpec.from_mapping(mutate(bogus={"x": 1}), source="<test>")
        assert "bogus" in str(err.value) and "<test>" in str(err.value)

    def test_unknown_section_key_names_keypath(self):
        with pytest.raises(DeviceSpecError) as err:
            DeviceSpec.from_mapping(
                mutate(timing={"warp_factor": 9}), source="<test>"
            )
        message = str(err.value)
        assert "[timing].warp_factor" in message

    def test_error_carries_source_keypath_value(self):
        with pytest.raises(DeviceSpecError) as err:
            DeviceSpec.from_mapping(
                mutate(geometry={"channels": 0}), source="myfile.toml"
            )
        assert err.value.source == "myfile.toml"
        assert err.value.keypath == "[geometry].channels"
        assert err.value.value == 0

    def test_inconsistent_die_count(self):
        with pytest.raises(DeviceSpecError) as err:
            DeviceSpec.from_mapping(
                mutate(geometry={"dies": 7}), source="<test>"
            )
        assert "[geometry].dies" in str(err.value)

    def test_non_monotonic_program_steps(self):
        with pytest.raises(DeviceSpecError) as err:
            DeviceSpec.from_mapping(
                mutate(timing={"program_step_ns": [300, 200, 400]}),
                source="<test>",
            )
        message = str(err.value)
        assert "program_step_ns" in message and "monotonic" in message

    def test_step_sum_must_match_explicit_program_ns(self):
        with pytest.raises(DeviceSpecError):
            DeviceSpec.from_mapping(
                mutate(
                    timing={
                        "program_step_ns": [100, 200],
                        "program_ns": 999,
                    }
                ),
                source="<test>",
            )

    def test_step_table_defaults_program_ns_to_sum(self):
        doc = mutate(timing={"program_step_ns": [40000, 60000]})
        del doc["timing"]["program_ns"]
        spec = DeviceSpec.from_mapping(doc, source="<test>")
        assert spec.to_ssd_config().timing.program_ns == 100000

    def test_wrong_value_type(self):
        with pytest.raises(DeviceSpecError) as err:
            DeviceSpec.from_mapping(
                mutate(timing={"read_ns": "fast"}), source="<test>"
            )
        assert "'fast'" in str(err.value)

    def test_super_channel_requires_paired_dies(self):
        with pytest.raises(DeviceSpecError):
            DeviceSpec.from_mapping(
                mutate(geometry={"super_channel": True}), source="<test>"
            )

    def test_bad_gc_policy(self):
        with pytest.raises(DeviceSpecError) as err:
            DeviceSpec.from_mapping(
                mutate(ftl={"gc_policy": "mostly-random"}), source="<test>"
            )
        assert "[ftl].gc_policy" in str(err.value)

    def test_errors_never_escape_as_other_types(self):
        # The contract: *any* malformed mapping surfaces as
        # DeviceSpecError, not TypeError/KeyError from mid-construction.
        malformed = [
            mutate(timing=[1, 2, 3]),
            mutate(geometry={"pages_per_block": -5}),
            mutate(ftl={"overprovision": 1.5}),
            {"schema": 1, "name": "x"},
            {"schema": 99, "name": "x"},
        ]
        for doc in malformed:
            with pytest.raises(DeviceSpecError):
                DeviceSpec.from_mapping(doc, source="<test>")


class TestRoundTrip:
    def test_toml_round_trip_is_hash_stable(self, tmp_path):
        spec = spec_from_config(build_ull_preset(), name="rt")
        path = tmp_path / "rt.toml"
        path.write_text(spec.to_toml())
        again = DeviceSpec.from_path(path)
        assert again.spec_hash() == spec.spec_hash()
        assert again.to_ssd_config() == spec.to_ssd_config()

    def test_json_round_trip_is_hash_stable(self, tmp_path):
        spec = spec_from_config(build_nvme_preset(), name="rt")
        path = tmp_path / "rt.json"
        path.write_text(spec.to_json())
        again = DeviceSpec.from_path(path)
        assert again.spec_hash() == spec.spec_hash()
        assert again.to_ssd_config() == spec.to_ssd_config()

    def test_terse_and_explicit_specs_hash_equal(self):
        # Defaults are resolved before hashing: spelling a default out
        # must not re-key the device.
        terse = DeviceSpec.from_mapping(MINIMAL, source="<terse>")
        explicit = DeviceSpec.from_mapping(
            mutate(ftl={"overprovision": terse.to_ssd_config().overprovision}),
            source="<explicit>",
        )
        assert terse.spec_hash() == explicit.spec_hash()

    def test_hash_changes_with_content(self):
        a = DeviceSpec.from_mapping(MINIMAL, source="<a>")
        b = DeviceSpec.from_mapping(
            mutate(timing={"read_ns": 3001}), source="<b>"
        )
        assert a.spec_hash() != b.spec_hash()

    def test_source_does_not_affect_hash(self):
        a = DeviceSpec.from_mapping(MINIMAL, source="<a>")
        b = DeviceSpec.from_mapping(MINIMAL, source="/elsewhere/dev.toml")
        assert a.spec_hash() == b.spec_hash()

    def test_json_output_is_valid_json(self):
        spec = DeviceSpec.from_mapping(MINIMAL, source="<test>")
        doc = json.loads(spec.to_json())
        assert doc["name"] == "dev"


class TestPresetTwins:
    def test_generated_zssd_spec_equals_preset(self):
        spec = spec_from_config(build_ull_preset(), name="zssd")
        assert spec.to_ssd_config() == build_ull_preset()

    def test_generated_intel750_spec_equals_preset(self):
        spec = spec_from_config(build_nvme_preset(), name="intel750")
        assert spec.to_ssd_config() == build_nvme_preset()
