"""Tests for the per-I/O trace recorder."""

import pytest

from repro.ssd.device import IoOp
from repro.workloads.trace import TraceRecorder
from repro.workloads import FioJob, run_job
from repro.kstack import CompletionMethod, KernelStack
from repro.sim import Simulator
from repro.ssd import SsdDevice
from tests.test_ssd_device import tiny_config


def populated_trace() -> TraceRecorder:
    trace = TraceRecorder()
    trace.record(IoOp.READ, 0, 4096, 0, 10_000)
    trace.record(IoOp.WRITE, 4096, 4096, 5_000, 9_000)
    trace.record(IoOp.READ, 8192, 8192, 8_000, 50_000)
    return trace


class TestTraceRecorder:
    def test_entries_preserve_order_and_index(self):
        trace = populated_trace()
        assert len(trace) == 3
        assert [entry.index for entry in trace] == [0, 1, 2]
        assert trace[1].op is IoOp.WRITE

    def test_latency(self):
        trace = populated_trace()
        assert trace[0].latency_ns == 10_000
        assert trace[2].latency_ns == 42_000

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder().record(IoOp.READ, 0, 512, 100, 50)

    def test_nonpositive_nbytes_rejected(self):
        # Regression: a zero-byte entry silently skewed throughput and
        # fio-log output instead of failing at the source.
        with pytest.raises(ValueError):
            TraceRecorder().record(IoOp.READ, 0, 0, 100, 200)
        with pytest.raises(ValueError):
            TraceRecorder().record(IoOp.WRITE, 0, -4096, 100, 200)

    def test_filter_by_direction(self):
        trace = populated_trace()
        assert len(trace.filter(IoOp.READ)) == 2
        assert len(trace.filter(IoOp.WRITE)) == 1
        assert len(trace.filter()) == 3

    def test_summary_per_direction(self):
        trace = populated_trace()
        assert trace.summary(IoOp.WRITE).mean_ns == 4_000
        assert trace.summary().count == 3

    def test_slowest(self):
        trace = populated_trace()
        worst = trace.slowest(2)
        assert worst[0].latency_ns == 42_000
        assert worst[1].latency_ns == 10_000

    def test_outstanding_at(self):
        trace = populated_trace()
        assert trace.outstanding_at(8_500) == 3
        assert trace.outstanding_at(9_500) == 2
        assert trace.outstanding_at(60_000) == 0

    def test_throughput(self):
        trace = populated_trace()
        # 16384 bytes over 50 us span = ~327 MB/s.
        assert trace.throughput_mbps() == pytest.approx(16384 * 1000 / 50_000)

    def test_interarrival(self):
        gaps = populated_trace().interarrival_ns()
        assert list(gaps) == [5_000, 3_000]

    def test_empty_trace(self):
        trace = TraceRecorder()
        assert trace.throughput_mbps() == 0.0
        assert len(trace.interarrival_ns()) == 0
        assert trace.summary().count == 0

    def test_fio_log_format(self):
        log = populated_trace().to_fio_log()
        lines = log.splitlines()
        assert len(lines) == 3
        assert lines[0] == "0, 10000, 0, 4096"
        assert lines[1] == "0, 4000, 1, 4096"


class TestTraceThroughRunner:
    def test_job_captures_trace(self):
        sim = Simulator()
        device = SsdDevice(sim, tiny_config())
        device.precondition(1.0)
        stack = KernelStack(sim, device, completion=CompletionMethod.INTERRUPT)
        job = FioJob(name="t", rw="randread", io_count=40, capture_trace=True)
        result = run_job(sim, stack, job)
        assert result.trace is not None
        assert len(result.trace) == 40
        assert result.trace.summary().count == 40
        # Trace latencies agree with the recorder's summary.
        assert result.trace.summary().mean_ns == pytest.approx(
            result.latency.mean_ns
        )

    def test_trace_disabled_by_default(self):
        sim = Simulator()
        device = SsdDevice(sim, tiny_config())
        device.precondition(1.0)
        stack = KernelStack(sim, device)
        result = run_job(sim, stack, FioJob(name="t", rw="randread", io_count=5))
        assert result.trace is None
