"""Tests for the simulator self-profiler (repro.obs.prof)."""

import json
import pickle

import pytest

from repro.api import JobConfig, Testbed
from repro.core.sweep import ExperimentSpec, SweepEngine
from repro.obs import (
    NULL_PROFILER,
    Observability,
    Profiler,
    ProfilerConfig,
    bench_hotspots,
    hotspot_table,
    queue_report,
    to_collapsed,
    to_speedscope,
    write_speedscope,
)
from repro.obs.prof import (
    SPEEDSCOPE_SCHEMA,
    CallSite,
    _module_from_filename,
    _module_to_site,
)
from repro.sim import engine as sim_engine
from repro.sim.engine import Simulator


def toy_run(obs=None, procs=3, waits=5):
    """A tiny simulation: ``procs`` generators each awaiting ``waits``
    timeouts, all at the same instants (same-tick batches of ``procs``)."""
    sim = Simulator(obs=obs)

    def worker(n):
        for _ in range(n):
            yield sim.timeout(10)

    for _ in range(procs):
        sim.process(worker(waits))
    sim.run()
    return sim


def profiled_bundle(**config):
    return Observability(
        tracing=False, metrics=False, profile=ProfilerConfig(**config)
    )


def run_small_job(rw="randread", io_count=200):
    """One real stack run; returns (JobResult, sim events executed)."""
    before = sim_engine.events_executed_total
    result, _ = Testbed(device="ull").run_job(
        JobConfig(rw=rw, engine="psync", io_count=io_count), want_device=True
    )
    return result, sim_engine.events_executed_total - before


# ----------------------------------------------------------------------
# Config and site mapping
# ----------------------------------------------------------------------
class TestProfilerConfig:
    def test_defaults(self):
        config = ProfilerConfig()
        assert config.wall is True
        assert config.top == 15

    def test_validation(self):
        with pytest.raises(ValueError, match="period"):
            ProfilerConfig(period_ns=0)
        with pytest.raises(ValueError, match="table size"):
            ProfilerConfig(top=0)

    def test_params_round_trip(self):
        config = ProfilerConfig(wall=False, period_ns=5_000, top=7)
        clone = ProfilerConfig.from_params(config.to_params())
        assert (clone.wall, clone.period_ns, clone.top) == (False, 5_000, 7)


class TestSiteMapping:
    def test_repro_module_maps_to_layer_and_component(self):
        site = _module_to_site("repro.ssd.channels", "Channel._xfer", "callback")
        assert site == CallSite("ssd", "ssd.channels", "Channel._xfer", "callback")

    def test_non_repro_module_is_other(self):
        site = _module_to_site("__main__", "worker", "process")
        assert site.layer == "other"
        assert site.component == "__main__"

    def test_module_from_filename(self):
        assert (
            _module_from_filename("/x/src/repro/ftl/gc.py") == "repro.ftl.gc"
        )
        assert (
            _module_from_filename("/x/src/repro/obs/__init__.py")
            == "repro.obs"
        )
        assert _module_from_filename("/tmp/elsewhere.py") == ""


# ----------------------------------------------------------------------
# Attribution and queue introspection on a toy simulation
# ----------------------------------------------------------------------
class TestToySimulation:
    def test_counts_and_attribution(self):
        obs = profiled_bundle(wall=False)
        toy_run(obs=obs, procs=3, waits=5)
        prof = obs.profiler
        # 3 procs x (1 start + 5 resumes) dispatches, all via generators.
        assert prof.dispatches == 18
        assert prof.total_events == 18
        assert prof.inserts == prof.dispatches
        assert prof.trampoline_hops == 18
        assert len(prof.events) == 1
        (site,) = prof.events
        assert site.kind == "process"
        assert site.callsite.endswith("worker")
        assert not prof.wall_ns  # wall sampling was off

    def test_wall_sampling_records_nanoseconds(self):
        obs = profiled_bundle(wall=True)
        toy_run(obs=obs)
        prof = obs.profiler
        assert sum(prof.wall_ns.values()) > 0
        assert set(prof.wall_ns) <= set(prof.events)

    def test_same_tick_batches(self):
        obs = profiled_bundle(wall=False)
        toy_run(obs=obs, procs=4, waits=3)
        stats = obs.profiler.queue_stats()
        # Each instant dispatches all 4 processes together.
        assert stats["batch_max"] == 4.0
        assert stats["batches"] * 4 == obs.profiler.dispatches
        assert stats["peak_depth"] == 4
        assert stats["sift_cost"] > 0

    def test_interrupt_detaches_so_no_stale_wakeup(self):
        obs = profiled_bundle(wall=False)
        sim = Simulator(obs=obs)

        def sleeper():
            yield sim.timeout(100)

        def interrupter(victim):
            yield sim.timeout(10)
            victim.interrupt()

        victim = sim.process(sleeper())
        sim.process(interrupter(victim))
        sim.run()
        # interrupt() detaches the process from the pending timeout, so
        # its later firing delivers no wakeup at all: zero stales.
        assert obs.profiler.stale_wakeups == 0

    def test_stale_wakeup_still_counted(self):
        obs = profiled_bundle(wall=False)
        sim = Simulator(obs=obs)

        def sleeper():
            ready = sim.event()
            ready.succeed()
            yield ready  # resume rides the microtask ring

        # The interrupt lands between the yield and the queued microtask
        # (same instant), so the ring entry fires against a process that
        # already moved on — the one stale path detach cannot remove.
        victim = sim.process(sleeper())
        sim.schedule(0, victim.interrupt)
        sim.run()
        assert obs.profiler.stale_wakeups == 1

    def test_queue_depth_series_recorded(self):
        obs = profiled_bundle(wall=False, period_ns=10)
        toy_run(obs=obs)
        telemetry = obs.profiler.telemetry
        assert telemetry.get("prof.queue.depth").samples()
        assert telemetry.get("prof.events.dispatched").samples()
        assert telemetry.get("prof.trampoline.hops").samples()

    def test_attributed_share_is_zero_layer_for_test_code(self):
        obs = profiled_bundle(wall=False)
        toy_run(obs=obs)
        # Toy generators live in the test module: named "other", so the
        # named-layer share is 0 — the real-stack test below checks 1.0.
        assert obs.profiler.attributed_share() == 0.0


# ----------------------------------------------------------------------
# Byte-identity: the profiler observes, never steers
# ----------------------------------------------------------------------
class TestByteIdentity:
    def test_profiled_run_is_identical_to_unprofiled(self):
        bare, bare_events = run_small_job()
        with profiled_bundle(wall=True):
            profiled, profiled_events = run_small_job()
        assert bare_events == profiled_events
        assert bare.latency == profiled.latency
        assert bare.read_latency == profiled.read_latency
        assert bare.duration_ns == profiled.duration_ns
        assert bare.bytes_done == profiled.bytes_done

    def test_disabled_bundle_leaves_hot_path_alone(self):
        sim = Simulator()  # NULL_OBS: no profiler sampled
        assert sim._prof is None
        obs = Observability(tracing=False, metrics=False)
        assert obs.profiler is NULL_PROFILER
        assert not obs.enabled
        assert Simulator(obs=obs)._prof is None

    def test_enabled_profiler_makes_bundle_enabled(self):
        obs = profiled_bundle()
        assert obs.enabled  # sweep engine must step aside (live runs)
        assert Simulator(obs=obs)._prof is obs.profiler


# ----------------------------------------------------------------------
# Real-stack attribution coverage (the >=95% acceptance bar)
# ----------------------------------------------------------------------
class TestRealStackAttribution:
    def test_full_stack_run_attributes_to_named_layers(self):
        obs = profiled_bundle(wall=False)
        with obs:
            run_small_job(io_count=150)
        prof = obs.profiler
        assert prof.total_events > 1000
        assert prof.attributed_share() >= 0.95
        layers = dict(prof.layer_totals())
        assert "ssd" in layers
        table = hotspot_table(prof)
        assert "attributed" in table
        assert "layers:" in table
        report = queue_report(prof)
        assert "trampoline hops" in report


# ----------------------------------------------------------------------
# Merging, pickling, and the sweep worker path
# ----------------------------------------------------------------------
class TestAbsorbAndPickle:
    def test_absorb_sums_counts(self):
        a, b = profiled_bundle(wall=False), profiled_bundle(wall=False)
        toy_run(obs=a, procs=2, waits=3)
        toy_run(obs=b, procs=3, waits=4)
        total = a.profiler.dispatches + b.profiler.dispatches
        a.absorb(b)
        assert a.profiler.dispatches == total
        assert a.profiler.total_events == total

    def test_pickle_round_trip_keeps_counts(self):
        obs = profiled_bundle(wall=False)
        toy_run(obs=obs)
        clone = pickle.loads(pickle.dumps(obs.profiler))
        assert clone.events == obs.profiler.events
        assert clone.dispatches == obs.profiler.dispatches
        assert clone._sites == {}  # attribution cache never crosses

    def test_parallel_sweep_counts_match_serial(self):
        from tests.test_obs_telemetry import gc_point

        def run(jobs):
            obs = profiled_bundle(wall=False)
            with obs:
                engine = SweepEngine(jobs=jobs)
                points = tuple(
                    gc_point(io_count=200, key=("gc", qd), iodepth=qd,
                             engine="libaio")
                    for qd in (1, 4)
                )
                engine.run(ExperimentSpec(name="prof-det", points=points))
            return obs.profiler

        serial = run(jobs=1)
        parallel = run(jobs=2)
        assert serial.events == parallel.events
        assert serial.dispatches == parallel.dispatches
        assert serial.trampoline_hops == parallel.trampoline_hops
        assert to_collapsed(serial) == to_collapsed(parallel)


# ----------------------------------------------------------------------
# Export schemas
# ----------------------------------------------------------------------
class TestExports:
    def profiler_with_data(self):
        obs = profiled_bundle(wall=True)
        toy_run(obs=obs)
        return obs.profiler

    def test_collapsed_stack_format(self):
        prof = self.profiler_with_data()
        text = to_collapsed(prof)
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            stack, _, count = line.rpartition(" ")
            assert len(stack.split(";")) == 3
            assert int(count) > 0

    def test_collapsed_weight_validation(self):
        with pytest.raises(ValueError, match="weight"):
            to_collapsed(Profiler(), weight="bogus")

    def test_speedscope_document_schema(self):
        prof = self.profiler_with_data()
        doc = to_speedscope(prof, name="toy")
        assert doc["$schema"] == SPEEDSCOPE_SCHEMA
        assert doc["name"] == "toy"
        frames = doc["shared"]["frames"]
        assert frames and all("name" in frame for frame in frames)
        names = [profile["name"] for profile in doc["profiles"]]
        assert names == ["sim events", "wall time"]
        for profile in doc["profiles"]:
            assert profile["type"] == "sampled"
            assert len(profile["samples"]) == len(profile["weights"])
            assert profile["endValue"] == sum(profile["weights"])
            for stack in profile["samples"]:
                assert all(0 <= index < len(frames) for index in stack)
        events = doc["profiles"][0]
        assert sum(events["weights"]) == prof.total_events
        json.dumps(doc)  # must be JSON-serializable as-is

    def test_speedscope_without_wall_has_one_profile(self):
        obs = profiled_bundle(wall=False)
        toy_run(obs=obs)
        doc = to_speedscope(obs.profiler)
        assert [p["name"] for p in doc["profiles"]] == ["sim events"]

    def test_write_speedscope_parses_back(self, tmp_path):
        prof = self.profiler_with_data()
        path = tmp_path / "profile.speedscope.json"
        write_speedscope(prof, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["$schema"] == SPEEDSCOPE_SCHEMA

    def test_bench_hotspots_rows(self):
        prof = self.profiler_with_data()
        rows = bench_hotspots(prof, top=5)
        assert rows
        for row in rows:
            assert set(row) == {"site", "events", "share"}
        assert rows[0]["events"] == max(row["events"] for row in rows)

    def test_empty_profiler_renders(self):
        prof = Profiler()
        assert hotspot_table(prof) == "(no events profiled)"
        assert to_collapsed(prof) == ""
        doc = to_speedscope(prof)
        assert doc["profiles"][0]["samples"] == []
