"""Differential-ordering harness for the calendar event queue.

The calendar/bucket queue in :mod:`repro.sim.engine` claims dispatch
order *identical* to the classic single-heap engine it replaced (one
``heapq`` of ``(when, seq, callback)`` entries).  These tests check the
claim mechanically: seeded random workloads — nested schedules,
same-tick storms, zero-delay microtask chains — run through both the
real simulator and :class:`ReferenceHeapEngine`, and the full
``(time, label)`` dispatch transcripts must match exactly.

The boundary tests pin ``run(until=)`` / ``run_until_event`` behavior at
bucket edges: a bucket whose tick is ``<= until`` drains whole (same
tick never straddles the boundary), and the clock lands exactly on
``until`` when the simulation outlives it.
"""

import heapq
import random

import pytest

from repro.sim.engine import Simulator


class ReferenceHeapEngine:
    """The pre-calendar engine: one heap, per-entry sequence numbers.

    Kept as the ordering oracle — intentionally the simplest possible
    implementation of the documented contract (time order, FIFO within
    an instant, ``run(until)`` advances the clock to ``until``).
    """

    def __init__(self):
        self.now = 0
        self._queue = []
        self._seq = 0

    def schedule(self, delay, callback, *args):
        self.schedule_at(self.now + int(delay), callback, *args)

    def schedule_at(self, when, callback, *args):
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        heapq.heappush(self._queue, (when, self._seq, callback, args))
        self._seq += 1

    def post(self, callback, *args):
        self.schedule_at(self.now, callback, *args)

    def step(self):
        if not self._queue:
            return False
        when, _, callback, args = heapq.heappop(self._queue)
        self.now = when
        callback(*args)
        return True

    def run(self, until=None):
        while self._queue:
            when = self._queue[0][0]
            if until is not None and when > until:
                break
            self.step()
        if until is not None and until > self.now:
            self.now = until


class ScriptedWorkload:
    """A deterministic random workload driven by a per-run RNG.

    Each dispatched callback logs ``(now, label)`` and then — decided by
    the RNG — fans out child callbacks with delays drawn from a mix
    heavy in 0 (microtask chains) and same-tick collisions.  Because
    both engines promise the same dispatch order, the RNG draw sequence
    aligns and the scripts stay identical run-to-run.
    """

    DELAYS = (0, 0, 0, 1, 1, 2, 3, 5, 7, 10, 50)

    def __init__(self, engine, seed, budget=400):
        self.engine = engine
        self.rng = random.Random(seed)
        self.budget = budget
        self.log = []
        self.counter = 0

    def seed_initial(self, count=12):
        for _ in range(count):
            self._spawn(self.rng.choice(self.DELAYS))

    def _spawn(self, delay):
        label = self.counter
        self.counter += 1
        if delay == 0 and self.rng.random() < 0.5:
            self.engine.post(self.callback, label)
        else:
            self.engine.schedule(delay, self.callback, label)

    def callback(self, label):
        self.log.append((self.engine.now, label))
        children = self.rng.randint(0, 3)
        for _ in range(children):
            if self.counter >= self.budget:
                return
            self._spawn(self.rng.choice(self.DELAYS))


def transcripts(seed, budget=400, until=None):
    runs = []
    for engine in (Simulator(), ReferenceHeapEngine()):
        workload = ScriptedWorkload(engine, seed, budget)
        workload.seed_initial()
        engine.run(until=until)
        runs.append((workload.log, engine.now))
    return runs


@pytest.mark.parametrize("seed", range(10))
def test_fuzzed_dispatch_order_matches_reference(seed):
    (calendar_log, calendar_now), (heap_log, heap_now) = transcripts(seed)
    assert calendar_log == heap_log
    assert calendar_now == heap_now
    assert len(calendar_log) >= 12  # the workload actually ran


@pytest.mark.parametrize("seed", range(5))
def test_fuzzed_run_until_matches_reference(seed):
    # Stop mid-simulation, then resume: both cuts must agree.
    (cal_log, cal_now), (heap_log, heap_now) = transcripts(seed, until=40)
    assert cal_log == heap_log
    assert cal_now == heap_now == 40


@pytest.mark.parametrize("seed", range(5))
def test_fuzzed_step_interleaving_matches_run(seed):
    stepped = Simulator()
    workload = ScriptedWorkload(stepped, seed)
    workload.seed_initial()
    while stepped.step():
        pass
    (run_log, _), _ = transcripts(seed)
    assert workload.log == run_log


# ----------------------------------------------------------------------
# Bucket-edge boundaries
# ----------------------------------------------------------------------
class TestRunUntilBoundaries:
    def test_bucket_at_until_drains_whole(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, fired.append, "a")
        sim.schedule(10, fired.append, "b")
        sim.schedule(20, fired.append, "late")
        sim.run(until=10)
        assert fired == ["a", "b"]
        assert sim.now == 10
        assert sim.pending_count == 1

    def test_microtasks_spawned_at_until_still_run(self):
        sim = Simulator()
        fired = []

        def tail():
            fired.append("tail")

        def head():
            fired.append("head")
            sim.post(tail)  # joins the live batch at t == until

        sim.schedule(10, head)
        sim.run(until=10)
        assert fired == ["head", "tail"]

    def test_clock_lands_on_until_between_buckets(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.schedule(30, lambda: None)
        sim.run(until=20)
        assert sim.now == 20
        assert sim.pending_count == 1
        sim.run()
        assert sim.now == 30
        assert sim.pending_count == 0

    def test_resume_after_until_keeps_order(self):
        sim = Simulator()
        fired = []
        for delay in (5, 15, 15, 25):
            sim.schedule(delay, fired.append, delay)
        sim.run(until=15)
        assert fired == [5, 15, 15]
        sim.run()
        assert fired == [5, 15, 15, 25]

    def test_run_backwards_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=5)

    def test_run_until_event_limit_at_bucket_edge(self):
        sim = Simulator()
        target = sim.event()
        sim.schedule(10, lambda: None)
        sim.schedule(20, target.succeed)
        # Limit sits exactly on the pre-target bucket: it runs, the
        # target's bucket (at 20 > 15) does not.
        sim.run_until_event(target, limit=15)
        assert not target.triggered
        assert sim.now == 10
        sim.run_until_event(target)
        assert target.triggered
        assert sim.now == 20


class TestPendingCount:
    def test_counts_microtask_ring_entries(self):
        sim = Simulator()
        seen = []

        def head():
            sim.post(lambda: None)
            sim.post(lambda: None)
            seen.append(sim.pending_count)

        sim.schedule(0, head)
        sim.schedule(5, lambda: None)
        assert sim.pending_count == 2
        sim.run()
        # Inside head: the two ring entries plus the t=5 callback.
        assert seen == [3]
        assert sim.pending_count == 0

    def test_exact_across_step_and_batch(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(10, lambda: None)
        assert sim.pending_count == 4
        assert sim.step()  # dispatches one entry of the t=10 batch
        assert sim.pending_count == 3
        sim.run()
        assert sim.pending_count == 0
        assert not sim.step()
