"""Tests for the per-die block allocator."""

import pytest

from repro.ftl import BlockAllocator, FtlLayout, OutOfSpace


def make_allocator() -> BlockAllocator:
    return BlockAllocator(FtlLayout(dies=2, blocks_per_die=3, pages_per_block=4))


class TestAllocation:
    def test_pages_are_sequential_within_block(self):
        allocator = make_allocator()
        pages = [allocator.allocate_page(0) for _ in range(4)]
        assert pages == [0, 1, 2, 3]

    def test_new_block_opens_when_full(self):
        allocator = make_allocator()
        for _ in range(4):
            allocator.allocate_page(0)
        assert allocator.allocate_page(0) == 4  # first page of block 1
        assert allocator.closed_blocks(0) == frozenset({0})

    def test_dies_are_independent(self):
        allocator = make_allocator()
        layout = allocator.layout
        page_die0 = allocator.allocate_page(0)
        page_die1 = allocator.allocate_page(1)
        assert layout.die_of_page(page_die0) == 0
        assert layout.die_of_page(page_die1) == 1

    def test_out_of_space(self):
        allocator = make_allocator()
        for _ in range(3 * 4):
            allocator.allocate_page(0)
        with pytest.raises(OutOfSpace):
            allocator.allocate_page(0)

    def test_round_robin_die_choice(self):
        allocator = make_allocator()
        assert [allocator.next_die() for _ in range(4)] == [0, 1, 0, 1]

    def test_free_block_accounting(self):
        allocator = make_allocator()
        assert allocator.free_blocks(0) == 3
        allocator.allocate_page(0)  # opens a block
        assert allocator.free_blocks(0) == 2
        assert allocator.min_free_blocks() == 2

    def test_remaining_in_active(self):
        allocator = make_allocator()
        assert allocator.remaining_in_active(0) == 0
        allocator.allocate_page(0)
        assert allocator.remaining_in_active(0) == 3


class TestRelease:
    def _fill_block(self, allocator, die):
        for _ in range(allocator.layout.pages_per_block):
            allocator.allocate_page(die)
        # open the next block so the previous one closes
        allocator.allocate_page(die)

    def test_release_returns_block_to_pool(self):
        allocator = make_allocator()
        self._fill_block(allocator, 0)
        assert allocator.free_blocks(0) == 1
        allocator.release_block(0)
        assert allocator.free_blocks(0) == 2
        assert 0 not in allocator.closed_blocks(0)

    def test_release_active_block_rejected(self):
        allocator = make_allocator()
        allocator.allocate_page(0)
        with pytest.raises(ValueError):
            allocator.release_block(allocator.active_block(0))

    def test_release_unclosed_block_rejected(self):
        allocator = make_allocator()
        with pytest.raises(ValueError):
            allocator.release_block(2)  # never programmed

    def test_double_release_rejected(self):
        allocator = make_allocator()
        self._fill_block(allocator, 0)
        allocator.release_block(0)
        with pytest.raises(ValueError):
            allocator.release_block(0)

    def test_released_block_is_reused(self):
        allocator = make_allocator()
        layout = allocator.layout
        for _ in range(2):  # fill blocks 0 and 1
            self._fill_block(allocator, 0)
        allocator.release_block(0)
        # Exhaust block 2 (active), then the pool hands block 0 back.
        while allocator.remaining_in_active(0):
            allocator.allocate_page(0)
        page = allocator.allocate_page(0)
        assert layout.block_of_page(page) == 0
