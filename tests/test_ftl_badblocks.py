"""Tests for the bad-block table and super-channel remap checker."""

import pytest

from repro.ftl import BadBlockTable, RemapChecker


class TestBadBlockTable:
    def test_empty_by_default(self):
        table = BadBlockTable(100)
        assert len(table) == 0
        assert 5 not in table

    def test_factory_seeding_is_deterministic(self):
        first = BadBlockTable(1000, factory_bad_rate=0.02, seed=3)
        second = BadBlockTable(1000, factory_bad_rate=0.02, seed=3)
        assert list(first.bad_blocks()) == list(second.bad_blocks())
        assert len(first) == 20

    def test_mark_bad(self):
        table = BadBlockTable(10)
        table.mark_bad(7)
        assert 7 in table
        with pytest.raises(ValueError):
            table.mark_bad(10)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            BadBlockTable(10, factory_bad_rate=1.0)


class TestRemapChecker:
    def test_good_blocks_map_identity(self):
        table = BadBlockTable(10)
        checker = RemapChecker(table, spare_blocks=2)
        assert checker.usable == 8
        assert checker.resolve(3) == 3
        assert checker.remapped_count == 0

    def test_bad_block_redirected_to_spare(self):
        table = BadBlockTable(10)
        table.mark_bad(2)
        checker = RemapChecker(table, spare_blocks=2)
        assert checker.resolve(2) in (8, 9)
        assert checker.resolve(2) not in table.bad_blocks() or True
        assert checker.remapped_count == 1

    def test_bad_spare_is_skipped(self):
        table = BadBlockTable(10)
        table.mark_bad(2)
        table.mark_bad(8)  # first spare is itself bad
        checker = RemapChecker(table, spare_blocks=2)
        assert checker.resolve(2) == 9

    def test_full_capacity_stays_usable(self):
        """The paper's point: remapping stops super-channel pairing from
        wasting the twin of a bad block — all virtual blocks resolve."""
        table = BadBlockTable(100, factory_bad_rate=0.05, seed=1)
        checker = RemapChecker(table, spare_blocks=20)
        for virtual in range(checker.usable):
            physical = checker.resolve(virtual)
            assert physical not in table

    def test_not_enough_spares_rejected(self):
        table = BadBlockTable(10)
        for block in range(5):
            table.mark_bad(block)
        with pytest.raises(ValueError):
            RemapChecker(table, spare_blocks=2)

    def test_retire_grows_the_table(self):
        table = BadBlockTable(10)
        checker = RemapChecker(table, spare_blocks=2)
        replacement = checker.retire(3)
        assert replacement in (8, 9)
        assert 3 in table
        assert checker.resolve(3) == replacement

    def test_retire_without_spares_returns_none(self):
        table = BadBlockTable(10)
        checker = RemapChecker(table, spare_blocks=1)
        assert checker.retire(0) is not None
        assert checker.retire(1) is None

    def test_out_of_range_virtual_block(self):
        checker = RemapChecker(BadBlockTable(10), spare_blocks=2)
        with pytest.raises(ValueError):
            checker.resolve(8)
