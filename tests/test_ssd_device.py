"""Tests for the SSD controller + device facade."""

import pytest

from repro.sim import Simulator
from repro.ssd import SsdConfig, SsdDevice
from repro.flash.timing import FlashTiming

#: Deterministic small device for exact-behavior tests.
EXACT_TIMING = FlashTiming(
    name="exact", read_ns=3_000, program_ns=100_000, erase_ns=1_000_000,
    bus_mbps=1200, suspend_ns=1_000, resume_ns=1_000,
)


def tiny_config(**overrides) -> SsdConfig:
    defaults = dict(
        name="tiny",
        timing=EXACT_TIMING,
        channels=2,
        ways_per_channel=2,
        blocks_per_die=8,
        pages_per_block=16,
        units_per_program=2,
        channel_mbps=2400,
        read_fw_ns=1_000,
        write_fw_ns=1_000,
        completion_fw_ns=500,
        write_buffer_units=8,
        dram_hit_ns=1_000,
        pcie_mbps=3200,
        pcie_latency_ns=200,
        overprovision=0.25,
        gc_watermark_blocks=2,
    )
    defaults.update(overrides)
    return SsdConfig(**defaults)


def make_device(**overrides):
    sim = Simulator()
    device = SsdDevice(sim, tiny_config(**overrides))
    return sim, device


def wait(sim, request):
    sim.run_until_event(request.done)
    return request


class TestReadPath:
    def test_unwritten_read_served_from_dram(self):
        sim, device = make_device()
        request = wait(sim, device.read(0, 4096))
        # fw + dram + pcie + completion fw: no flash access at all.
        assert device.stats.unwritten_reads == 1
        assert device.stats.flash_reads == 0
        assert request.device_latency_ns < 10_000

    def test_preconditioned_read_hits_flash(self):
        sim, device = make_device()
        device.precondition(1.0)
        wait(sim, device.read(0, 4096))
        assert device.stats.flash_reads == 1

    def test_read_latency_composition(self):
        sim, device = make_device()
        device.precondition(1.0)
        request = wait(sim, device.read(0, 4096))
        # fw 1000 + tR 3000 + channel (4096B @ 2400MB/s ~ 1707)
        # + pcie (200 + 1280) + completion 500 ~ 7.7 us
        assert 7_000 <= request.device_latency_ns <= 9_000

    def test_multi_unit_read_uses_parallel_dies(self):
        sim, device = make_device()
        device.precondition(1.0)
        single = wait(sim, device.read(0, 4096)).device_latency_ns
        sim2, device2 = make_device()
        device2.precondition(1.0)
        multi = wait(sim2, device2.read(0, 16384)).device_latency_ns
        # 4 units striped over dies: far cheaper than 4x a single read.
        assert multi < 2.5 * single

    def test_buffer_hit_read_is_fast(self):
        sim, device = make_device()
        device.precondition(1.0)
        wait(sim, device.write(0, 4096))
        request = wait(sim, device.read(0, 4096))
        assert device.stats.buffer_read_hits >= 1
        assert request.device_latency_ns < 6_000


class TestWritePath:
    def test_buffered_write_is_fast(self):
        sim, device = make_device()
        request = wait(sim, device.write(0, 4096))
        # Ack from DRAM: far below tPROG.
        assert request.device_latency_ns < 10_000

    def test_writes_eventually_flush_to_flash(self):
        sim, device = make_device()
        for unit in range(4):
            device.write(unit * 4096, 4096)
        sim.run()
        assert device.ftl.host_writes == 4
        assert device.controller.write_buffer.occupancy == 0
        total_programs = sum(die.programs for die in device.controller.dies)
        assert total_programs >= 2  # 4 units / 2 per program

    def test_full_buffer_stalls_writes(self):
        sim, device = make_device(write_buffer_units=2)
        latencies = []
        for unit in range(12):
            latencies.append(wait(sim, device.write(unit * 4096, 4096)))
        stalled = [r for r in latencies if r.device_latency_ns > 50_000]
        assert device.controller.write_buffer.stall_count > 0
        assert stalled, "some writes must wait for a program to finish"

    def test_write_stall_mechanism(self):
        sim, device = make_device(write_stall_prob=0.5, write_stall_ns=1_000_000)
        slow = 0
        for unit in range(20):
            request = wait(sim, device.write(unit * 4096, 4096))
            if request.device_latency_ns > 1_000_000:
                slow += 1
        assert device.stats.write_stalls == slow
        assert 0 < slow < 20


class TestRequestValidation:
    def test_misaligned_offset_rejected(self):
        _, device = make_device()
        with pytest.raises(ValueError):
            device.read(100, 4096)

    def test_out_of_range_rejected(self):
        _, device = make_device()
        with pytest.raises(ValueError):
            device.read(device.capacity_bytes, 4096)

    def test_zero_size_rejected(self):
        _, device = make_device()
        with pytest.raises(ValueError):
            device.read(0, 0)

    def test_latency_before_completion_raises(self):
        _, device = make_device()
        request = device.read(0, 4096)
        with pytest.raises(RuntimeError):
            _ = request.device_latency_ns


class TestPrecondition:
    def test_fills_logical_space(self):
        _, device = make_device()
        written = device.precondition(1.0)
        assert written == device.logical_pages
        assert device.ftl.mapping.mapped_lpn_count == device.logical_pages

    def test_partial_fill(self):
        _, device = make_device()
        written = device.precondition(0.5)
        assert written == device.logical_pages // 2

    def test_resets_statistics(self):
        _, device = make_device()
        device.precondition(1.0)
        assert device.ftl.host_writes == 0

    def test_fraction_validated(self):
        _, device = make_device()
        with pytest.raises(ValueError):
            device.precondition(1.5)


class TestGarbageCollection:
    def test_sustained_overwrites_trigger_gc_and_stay_consistent(self):
        import numpy as np

        sim, device = make_device()
        device.precondition(1.0)
        rng = np.random.default_rng(5)
        pages = device.logical_pages
        requests = []
        for _ in range(pages * 2):
            offset = int(rng.integers(0, pages)) * 4096
            requests.append(device.write(offset, 4096))
        sim.run()
        assert all(r.done.triggered for r in requests)
        assert len(device.stats.gc_events) > 0
        assert device.ftl.write_amplification() > 1.0
        device.ftl.mapping.check_invariants()

    def test_gc_never_resurrects_stale_data(self):
        """Every LPN still maps to a valid page after heavy GC churn."""
        import numpy as np

        sim, device = make_device()
        device.precondition(1.0)
        rng = np.random.default_rng(6)
        pages = device.logical_pages
        for _ in range(pages * 2):
            device.write(int(rng.integers(0, pages)) * 4096, 4096)
        sim.run()
        for lpn in range(pages):
            assert device.ftl.read_ppa(lpn) is not None


class TestMapCache:
    def test_sequential_hits_random_misses(self):
        sim, device = make_device(
            map_cache_segments=2, map_segment_units=16, map_fetch_ns=3_000
        )
        device.precondition(1.0)
        for unit in range(8):  # one segment: at most one miss
            wait(sim, device.read(unit * 4096, 4096))
        sequential_misses = device.stats.map_misses
        assert sequential_misses <= 1
        import numpy as np

        rng = np.random.default_rng(2)
        for _ in range(8):
            offset = int(rng.integers(0, device.logical_pages)) * 4096
            wait(sim, device.read(offset, 4096))
        assert device.stats.map_misses > sequential_misses
