"""Tests for span tracing: phase marks, clamping, conservation, and
same-tick determinism."""

import pytest

from repro.core.experiment import DeviceKind, build_device
from repro.kstack.completion import CompletionMethod
from repro.kstack.stack import KernelStack
from repro.obs import (
    NULL_OBS,
    Observability,
    SpanTracer,
    current_obs,
    verify_conservation,
)
from repro.sim.engine import Simulator
from repro.ssd.device import IoOp


def run_kernel_ios(
    completion=CompletionMethod.INTERRUPT, reads=30, writes=30, seed=42
):
    """A fig10-style QD1 sync run with tracing enabled; returns the obs."""
    obs = Observability()
    with obs:
        sim = Simulator()
        device = build_device(sim, DeviceKind.ULL, precondition=0.5, seed=seed)
        stack = KernelStack(sim, device, completion=completion)

        def run():
            for index in range(reads):
                offset = (index * 37 % 2000) * 4096
                yield from stack.sync_io(IoOp.READ, offset, 4096)
            for index in range(writes):
                offset = (index * 53 % 2000) * 4096
                yield from stack.sync_io(IoOp.WRITE, offset, 4096)

        sim.process(run())
        sim.run()
    return obs


class TestIoTrace:
    def _trace(self):
        return SpanTracer().begin_io(IoOp.READ, 0, 4096, 1000)

    def test_phases_tile_lifetime(self):
        trace = self._trace()
        trace.phase("submit", 1000)
        trace.phase("ctrl", 1400)
        trace.phase("completion_isr", 2100)
        trace.finish(2500)
        spans = trace.phases()
        assert [s.name for s in spans] == ["submit", "ctrl", "completion_isr"]
        assert spans[0].start_ns == 1000 and spans[-1].end_ns == 2500
        assert sum(s.duration_ns for s in spans) == trace.latency_ns == 1500

    def test_backwards_mark_clamps(self):
        trace = self._trace()
        trace.phase("submit", 1000)
        trace.phase("ctrl", 2000)
        trace.phase("dma", 1500)  # out-of-order component: clamped to 2000
        trace.finish(3000)
        spans = trace.phases()
        assert spans[1].duration_ns == 0 or spans[1].end_ns == 2000
        assert sum(s.duration_ns for s in spans) == trace.latency_ns

    def test_future_marks_are_valid(self):
        # Analytic device paths book future timestamps; the host makes no
        # top-level marks in between, so conservation still holds.
        trace = self._trace()
        trace.phase("submit", 1000)
        trace.phase("flash_read", 5000)
        trace.phase("dma", 9000)
        trace.finish(12000)
        assert sum(s.duration_ns for s in trace.phases()) == 11000

    def test_double_finish_raises(self):
        trace = self._trace()
        trace.finish(2000)
        with pytest.raises(RuntimeError):
            trace.finish(3000)

    def test_relabel(self):
        trace = self._trace()
        trace.phase("write_buffer", 1200)
        trace.relabel("gc_stall")
        trace.finish(2000)
        assert trace.phases()[0].name == "gc_stall"

    def test_nested_spans_do_not_affect_conservation(self):
        trace = self._trace()
        trace.phase("ctrl", 1000)
        trace.annotate("map_fetch", 1100, 1400, lpn=7)
        trace.finish(2000)
        assert sum(s.duration_ns for s in trace.phases()) == 1000
        (nested,) = trace.nested()
        assert nested.depth == 1 and dict(nested.args)["lpn"] == 7


class TestConservation:
    @pytest.mark.parametrize(
        "method",
        [CompletionMethod.INTERRUPT, CompletionMethod.POLL, CompletionMethod.HYBRID],
    )
    def test_kernel_stack_per_io_exact(self, method):
        obs = run_kernel_ios(method)
        assert verify_conservation(obs.tracer) == 60

    def test_spdk_stack_per_io_exact(self):
        from repro.spdk.stack import SpdkStack

        obs = Observability()
        with obs:
            sim = Simulator()
            device = build_device(sim, DeviceKind.ULL, precondition=0.5)
            stack = SpdkStack(sim, device)

            def run():
                for index in range(40):
                    yield from stack.sync_io(IoOp.READ, index * 4096, 4096)

            sim.process(run())
            sim.run()
        assert verify_conservation(obs.tracer) == 40


class TestDeterminism:
    def _span_stream(self, obs):
        return [
            (t.io_id, t.op, s.name, s.start_ns, s.end_ns)
            for t in obs.tracer.finished_ios
            for s in t.spans()
        ]

    def test_same_seed_identical_span_stream(self):
        # Same-tick events resolve by FIFO sequence numbers, so two
        # identical runs must yield byte-identical span streams.
        first = self._span_stream(run_kernel_ios(CompletionMethod.POLL))
        second = self._span_stream(run_kernel_ios(CompletionMethod.POLL))
        assert first == second

    def test_tracing_does_not_perturb_timing(self):
        def latencies(obs_enabled):
            ctx = Observability() if obs_enabled else NULL_OBS
            sim = Simulator(obs=ctx if obs_enabled else None)
            device = build_device(sim, DeviceKind.ULL, precondition=0.5)
            stack = KernelStack(sim, device, completion=CompletionMethod.INTERRUPT)
            out = []

            def run():
                for index in range(30):
                    lat = yield from stack.sync_io(IoOp.READ, index * 4096, 4096)
                    out.append(lat)

            sim.process(run())
            sim.run()
            return out

        assert latencies(True) == latencies(False)


class TestNullPath:
    def test_default_sim_obs_is_null(self):
        sim = Simulator()
        assert sim.obs is NULL_OBS
        assert not sim.obs.tracer.enabled
        assert sim.obs.tracer.begin_io(IoOp.READ, 0, 4096, 0) is None

    def test_null_tracer_collects_nothing(self):
        sim = Simulator()
        device = build_device(sim, DeviceKind.ULL, precondition=0.2)
        stack = KernelStack(sim, device)

        def run():
            yield from stack.sync_io(IoOp.READ, 0, 4096)

        sim.process(run())
        sim.run()
        assert len(sim.obs.tracer.finished_ios) == 0
        assert len(sim.obs.tracer.track_spans) == 0

    def test_install_stack_restores(self):
        assert current_obs() is NULL_OBS
        obs = Observability()
        with obs:
            assert current_obs() is obs
        assert current_obs() is NULL_OBS
