"""Tests for concurrent (numjobs-style) job execution on one device."""


from repro.kstack import CompletionMethod, KernelStack
from repro.sim import Simulator
from repro.ssd import SsdDevice
from repro.workloads import FioJob, run_job
from repro.workloads.job import IoEngineKind
from repro.workloads.runner import run_jobs
from tests.test_ssd_device import tiny_config


def shared_device():
    sim = Simulator()
    device = SsdDevice(sim, tiny_config())
    device.precondition(1.0)
    return sim, device


class TestRunJobs:
    def test_two_readers_share_the_device(self):
        sim, device = shared_device()
        pairs = []
        for index in range(2):
            stack = KernelStack(sim, device, seed=index + 1)
            job = FioJob(
                name=f"reader{index}", rw="randread", io_count=100,
                seed=index + 1,
            )
            pairs.append((stack, job))
        results = run_jobs(sim, pairs)
        assert len(results) == 2
        assert all(result.latency.count == 100 for result in results)
        assert device.completed_reads == 200

    def test_concurrency_actually_overlaps(self):
        """Two concurrent jobs must finish in well under 2x one job."""
        sim_solo, device_solo = shared_device()
        solo = run_job(
            sim_solo,
            KernelStack(sim_solo, device_solo),
            FioJob(name="solo", rw="randread", io_count=150),
        )
        sim, device = shared_device()
        pairs = [
            (
                KernelStack(sim, device, seed=index + 1),
                FioJob(name=f"j{index}", rw="randread", io_count=150,
                       seed=index + 1),
            )
            for index in range(2)
        ]
        results = run_jobs(sim, pairs)
        # Wall time for both together < 1.5x a single job's wall time.
        assert results[0].duration_ns < 1.5 * solo.duration_ns

    def test_mixed_sync_and_async_jobs(self):
        sim, device = shared_device()
        sync_stack = KernelStack(sim, device, seed=1)
        async_stack = KernelStack(sim, device, seed=2)
        pairs = [
            (sync_stack, FioJob(name="s", rw="randread", io_count=80, seed=1)),
            (
                async_stack,
                FioJob(
                    name="a", rw="randwrite", io_count=80, seed=2,
                    engine=IoEngineKind.LIBAIO, iodepth=4,
                ),
            ),
        ]
        results = run_jobs(sim, pairs)
        assert results[0].read_latency.count == 80
        assert results[1].write_latency.count == 80
        device.ftl.mapping.check_invariants()

    def test_writer_interferes_with_reader(self):
        """A concurrent write stream raises the reader's latency on a
        device without suspend/resume — the Fig. 6 effect, driven by
        two independent jobs instead of a mixed pattern."""
        sim_solo, device_solo = shared_device()
        baseline = run_job(
            sim_solo,
            KernelStack(sim_solo, device_solo),
            FioJob(name="solo", rw="randread", io_count=200),
        )
        sim, device = shared_device()
        reader = KernelStack(sim, device, seed=1)
        writer = KernelStack(sim, device, seed=2)
        results = run_jobs(
            sim,
            [
                (reader, FioJob(name="r", rw="randread", io_count=200, seed=1)),
                (
                    writer,
                    FioJob(
                        name="w", rw="randwrite", io_count=200, seed=2,
                        engine=IoEngineKind.LIBAIO, iodepth=8,
                    ),
                ),
            ],
        )
        assert results[0].latency.mean_ns > baseline.latency.mean_ns

    def test_per_stack_accounting_is_separate(self):
        sim, device = shared_device()
        poll_stack = KernelStack(sim, device, completion=CompletionMethod.POLL, seed=1)
        int_stack = KernelStack(sim, device, seed=2)
        run_jobs(
            sim,
            [
                (poll_stack, FioJob(name="p", rw="randread", io_count=60, seed=1)),
                (int_stack, FioJob(name="i", rw="randread", io_count=60, seed=2)),
            ],
        )
        poll_fns = poll_stack.accounting.cycles_by_function()
        int_fns = int_stack.accounting.cycles_by_function()
        assert "blk_mq_poll" in poll_fns
        assert "blk_mq_poll" not in int_fns
