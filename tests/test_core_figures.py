"""Tests for the figure registry and small-scale figure structure.

Full-scale reproductions live in benchmarks/; here every figure is
exercised at a tiny I/O count to verify structure and the most robust
shape properties.
"""

import pytest

from repro.core.figures import FIGURES, run_figure, table1
from repro.core.figures_completion import fig10, fig14b, fig16
from repro.core.figures_device import fig04a
from repro.core.figures_server import fig23
from repro.core.figures_spdk import fig18, fig22b


class TestRegistry:
    def test_every_expected_figure_registered(self):
        expected = {
            "table1",
            "fig04a", "fig04b", "fig05a", "fig05b", "fig06a", "fig06b",
            "fig07a", "fig07b", "fig08a", "fig08b",
            "fig09", "fig10", "fig11", "fig12", "fig13", "fig14a", "fig14b",
            "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
            "fig22a", "fig22b", "fig23",
            "abl-suspend", "abl-mapcache", "abl-writebuffer",
            "abl-overprovision", "abl-gcpolicy", "abl-hybridsleep",
            "ext-lightqueue", "ext-lightqueue-depth", "ext-anatomy",
            "zoo-latency",
            "fault-readtail", "fault-retry", "fault-nbdflap",
        }
        assert set(FIGURES) == expected

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            run_figure("fig99")

    def test_every_figure_has_docstring(self):
        for figure_id, fn in FIGURES.items():
            assert fn.__doc__, f"{figure_id} lacks a docstring"


class TestTable1:
    def test_values_match_paper(self):
        result = table1()
        assert result.get("tR (us)").value_at("Z-NAND") == 3.0
        assert result.get("tPROG (us)").value_at("Z-NAND") == 100.0
        assert result.get("tR (us)").value_at("BiCS") == 45.0
        assert result.get("Page size (KB)").value_at("Z-NAND") == 2.0


class TestFigureShapes:
    """Tiny-scale structural + robust-shape checks."""

    def test_fig04a_ull_flatter_than_nvme(self):
        result = fig04a(io_count=250, depths=(1, 8))
        nvme = result.find("NVME", "RndRd")
        ull = result.find("ULL", "RndRd")
        assert nvme.value_at(1) > 3 * ull.value_at(1)
        assert len(result.series) == 8

    def test_fig10_poll_beats_interrupt_everywhere(self):
        result = fig10(io_count=150, block_sizes=(4096, 16384))
        for rw in ("SeqRd", "RndRd", "SeqWr", "RndWr"):
            poll = result.find(rw, "Poll")
            interrupt = result.find(rw, "Interrupt")
            for x in poll.x:
                assert poll.value_at(x) < interrupt.value_at(x)

    def test_fig14b_blk_mq_poll_dominates(self):
        result = fig14b(io_count=200)
        blk = result.get("blk_mq_poll")
        nvme = result.get("nvme_poll")
        for x in blk.x:
            assert blk.value_at(x) > nvme.value_at(x)
            assert blk.value_at(x) + nvme.value_at(x) > 60.0  # paper: 84%

    def test_fig16_poll_reduces_more_than_hybrid(self):
        result = fig16(io_count=200, block_sizes=(4096,))
        for rw in ("SeqRd", "RndRd"):
            poll = result.get(f"{rw} Polling").value_at("4KB")
            hybrid = result.get(f"{rw} Hybrid Polling").value_at("4KB")
            assert poll > hybrid > -5.0

    def test_fig18_spdk_wins_on_ull(self):
        result = fig18(io_count=150, block_sizes=(4096,))
        for rw in ("SeqRd", "SeqWr"):
            spdk = result.find(rw, "SPDK").value_at("4KB")
            kernel = result.find(rw, "Kernel").value_at("4KB")
            assert spdk < kernel

    def test_fig22b_breakdown_sums_to_100(self):
        result = fig22b(io_count=150)
        for x in result.series[0].x:
            total = sum(series.value_at(x) for series in result.series)
            assert total == pytest.approx(100.0, abs=1.0)

    def test_fig23_reads_benefit_more_than_writes(self):
        result = fig23(io_count=120, block_sizes=(4096,))
        read_reduction = 1 - (
            result.find("SeqRd", "SPDK").value_at("4KB")
            / result.find("SeqRd", "Kernel").value_at("4KB")
        )
        write_reduction = 1 - (
            result.find("SeqWr", "SPDK").value_at("4KB")
            / result.find("SeqWr", "Kernel").value_at("4KB")
        )
        assert read_reduction > 2 * write_reduction
        assert read_reduction > 0.2
