"""repro.units: converter exactness, rounding, and validation."""

from __future__ import annotations

import pytest

from repro import units


class TestTimeConverters:
    def test_ladder_up_is_exact_integer(self):
        assert units.us_to_ns(3) == 3_000
        assert units.ms_to_ns(2) == 2_000_000
        assert units.s_to_ns(1) == 1_000_000_000
        assert isinstance(units.us_to_ns(3), int)

    def test_ladder_down_is_float(self):
        assert units.ns_to_us(1_500) == 1.5
        assert units.ns_to_ms(2_500_000) == 2.5
        assert units.ns_to_s(1_000_000_000) == 1.0

    def test_round_trip_integral(self):
        for value in (0, 1, 7, 123_456):
            assert units.ns_to_us(units.us_to_ns(value)) == value

    def test_scale_constants_consistent(self):
        assert units.NS_PER_MS == units.NS_PER_US * 1_000
        assert units.NS_PER_S == units.NS_PER_MS * 1_000

    def test_us_to_ns_matches_hand_scaling(self):
        # The converters must be drop-in for `* 1_000` so the sweep
        # outputs cannot move when call sites migrate to them.
        for value in (0, 1, 13, 4_096, 999_999):
            assert units.us_to_ns(value) == value * 1_000


class TestSizeConverters:
    def test_bytes_to_pages_rounds_up(self):
        assert units.bytes_to_pages(0, 4096) == 0
        assert units.bytes_to_pages(1, 4096) == 1
        assert units.bytes_to_pages(4096, 4096) == 1
        assert units.bytes_to_pages(4097, 4096) == 2

    def test_pages_to_bytes(self):
        assert units.pages_to_bytes(3, 4096) == 12_288

    def test_sector_default_is_512(self):
        assert units.BYTES_PER_SECTOR == 512
        assert units.bytes_to_sectors(1024) == 2
        assert units.bytes_to_sectors(1025) == 3
        assert units.sectors_to_bytes(2) == 1024

    @pytest.mark.parametrize("bad", [0, -1, -4096])
    def test_nonpositive_geometry_rejected(self, bad):
        with pytest.raises(ValueError):
            units.bytes_to_pages(4096, bad)
        with pytest.raises(ValueError):
            units.pages_to_bytes(1, bad)
        with pytest.raises(ValueError):
            units.bytes_to_sectors(512, bad)
        with pytest.raises(ValueError):
            units.sectors_to_bytes(1, bad)


class TestAliases:
    def test_aliases_are_plain_types(self):
        # Deliberately NOT typing.NewType: annotating an API must never
        # force call sites to wrap values (see the module docstring).
        assert units.Ns is int
        assert units.Bytes is int
        assert units.Lpn is int
        assert units.Ppa is int
        assert units.Count is int
        assert units.Sec is float

    def test_public_surface_is_declared(self):
        for name in units.__all__:
            assert hasattr(units, name)
