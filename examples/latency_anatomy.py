#!/usr/bin/env python
"""Where does the microsecond go?  Latency anatomy across stacks.

Splits a 4 KB random read's latency into submit / device / complete
stages for the kernel-interrupt, kernel-poll, and SPDK paths on the ULL
SSD — the paper's whole Section V/VI argument in one table: the device
stage is identical everywhere, so every difference between the stacks
is host software, and the faster the device gets, the more that
software matters.

Also runs the Section IV-C "lighter queue" prototype, showing how much
of the submit stage is NVMe ring machinery.

Run:  python examples/latency_anatomy.py
"""

from repro.core.extensions import latency_anatomy, lightqueue_study
from repro.core.report import render_figure


def main() -> None:
    print(render_figure(latency_anatomy(io_count=1500)))
    print()
    print(render_figure(lightqueue_study(io_count=1500)))
    print()
    print("The device stage never changes; the stacks only differ in the")
    print("software wrapped around it.  On an 80us-flash NVMe SSD that")
    print("software is noise; at 11us of Z-NAND it is a third of the I/O.")


if __name__ == "__main__":
    main()
