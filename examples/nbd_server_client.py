#!/usr/bin/env python
"""A server-client deployment: ext4 over NBD, kernel vs. SPDK server.

The paper's Section VI-C reality check: kernel bypass is easy to sell in
a microbenchmark, but a real deployment has a client file system that
cannot be bypassed.  This example mounts the ext4 cost model on a
network block device backed by a ULL SSD and compares the kernel NBD
server against the SPDK NBD target.

Reads (which block the server on flash) keep almost all of SPDK's
benefit; writes (buffered, journal-amplified on the client) keep almost
none — the deployment eats the microbenchmark win.

Run:  python examples/nbd_server_client.py
"""

from repro import NbdServerKind, Simulator
from repro.core.figures_server import FileSystemOverNbd
from repro.workloads import FioJob, run_job
from repro.workloads.job import IoEngineKind

IO_COUNT = 600


def measure(server: NbdServerKind, rw: str, block_size: int):
    sim = Simulator()
    stack = FileSystemOverNbd(sim, server)
    job = FioJob(
        name=f"nbd-{server.value}-{rw}",
        rw=rw,
        block_size=block_size,
        engine=IoEngineKind.PSYNC,
        io_count=IO_COUNT,
        region_bytes=(stack.data_region_bytes // block_size) * block_size,
    )
    return run_job(sim, stack, job)


def main() -> None:
    print(f"fio over ext4 over NBD, ULL SSD backend, {IO_COUNT} file I/Os\n")
    print(f"{'workload':12s} {'size':>6s} {'kernel NBD':>11s} {'SPDK NBD':>10s} {'saving':>8s}")
    for rw in ("randread", "randwrite"):
        for block_size in (4096, 16384, 65536):
            kernel = measure(NbdServerKind.KERNEL, rw, block_size)
            spdk = measure(NbdServerKind.SPDK, rw, block_size)
            saving = 100 * (1 - spdk.latency.mean_ns / kernel.latency.mean_ns)
            print(
                f"{rw:12s} {block_size // 1024:5d}K "
                f"{kernel.latency.mean_us:10.1f}us {spdk.latency.mean_us:9.1f}us "
                f"{saving:7.1f}%"
            )
    print("\nReads: the kernel server pays socket + block wake-ups per request,")
    print("all of which SPDK's polled reactor removes (~39% in the paper).")
    print("Writes: client-side journaling/metadata dominate and the buffered")
    print("device write never blocks the server (<5% in the paper).")


if __name__ == "__main__":
    main()
