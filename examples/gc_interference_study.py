#!/usr/bin/env python
"""Garbage collection and read/write interference, ULL vs. NVMe.

Two experiments from the paper's Section IV-D:

1. *Interference* — random reads with an increasing fraction of writes
   mixed in.  On the NVMe SSD a 1.1 ms MLC program blocks every read
   queued behind it; the Z-SSD suspends the program, serves the read in
   ~4 us, and resumes (Fig. 6).
2. *Garbage collection* — overwrite a 100%-full drive until the FTL must
   reclaim blocks.  The NVMe SSD's write latency blows up; the ULL SSD
   stays flat while its power rises (GC running in parallel behind
   suspend/resume — Figs. 7b, 8).

Run:  python examples/gc_interference_study.py
"""

from repro import (
    DeviceKind,
    FioJob,
    IoEngineKind,
    Simulator,
    build_device,
    build_stack,
    run_job,
)
from repro.api import JobConfig, Testbed


def interference() -> None:
    print("1) Read latency under write interference (libaio QD8, 4KB)\n")
    print(f"{'write %':>8s} {'ULL read':>10s} {'NVMe read':>11s}")
    for frac in (0, 20, 40, 60, 80):
        row = []
        for kind in (DeviceKind.ULL, DeviceKind.NVME):
            testbed = Testbed(device=kind)
            rw = "randread" if frac == 0 else "randrw"
            result = testbed.run_job(JobConfig(
                rw=rw, engine="libaio", iodepth=8, io_count=2500,
                write_fraction=frac / 100, seed=42,
            ))
            row.append(result.read_latency.mean_us)
        print(f"{frac:7d}% {row[0]:9.1f}us {row[1]:10.1f}us")
    print()


def garbage_collection(kind: DeviceKind, io_count: int) -> None:
    sim = Simulator()
    device = build_device(sim, kind)  # preconditioned full
    stack = build_stack(sim, device)
    job = FioJob(
        name="overwrite", rw="randwrite", engine=IoEngineKind.PSYNC,
        io_count=io_count, capture_timeseries=True,
    )
    result = run_job(sim, stack, job)
    windowed = result.timeseries.windowed(max(1, result.duration_ns // 10))
    samples = " ".join(f"{mean / 1000:6.1f}" for mean in windowed.means)
    gc_events = device.stats.gc_events
    print(f"{kind.value.upper():5s} write latency (us) over 10 windows: {samples}")
    print(f"      {len(gc_events)} GC events, "
          f"write amplification {device.ftl.write_amplification():.2f}, "
          f"avg power {device.power.average_watts(sim.now):.2f}W")


def main() -> None:
    interference()
    print("2) Sustained 4KB overwrites on a full drive (pvsync2)\n")
    garbage_collection(DeviceKind.ULL, 25_000)
    garbage_collection(DeviceKind.NVME, 35_000)
    print("\nThe ULL SSD absorbs GC invisibly (suspend/resume + fast Z-NAND +")
    print("deep overprovisioning); the NVMe SSD's writes stall behind 1.1 ms")
    print("programs and 6 ms erases once reclamation starts.")


if __name__ == "__main__":
    main()
