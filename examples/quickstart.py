#!/usr/bin/env python
"""Quickstart: measure a ULL SSD through the kernel stack.

Resolves the paper's two devices from the registry by name, runs a
4 KB random-read job on each through the interrupt-driven kernel path,
and prints the fio-style summary — the numbers behind the paper's
headline claim that the Z-SSD serves random reads ~5x faster than a
high-end NVMe SSD.  (`python -m repro devices list` shows every other
named device the registry can build.)

Run:  python examples/quickstart.py
"""

from repro import (
    CompletionMethod,
    FioJob,
    IoEngineKind,
    KernelStack,
    Simulator,
    SsdDevice,
    run_job,
)
from repro.ssd.registry import resolve_config


def measure(config, label: str) -> None:
    sim = Simulator()
    device = SsdDevice(sim, config)
    device.precondition()  # write the whole drive once, like the paper
    stack = KernelStack(sim, device, completion=CompletionMethod.INTERRUPT)
    job = FioJob(
        name=f"{label}-randread",
        rw="randread",
        block_size=4096,
        engine=IoEngineKind.LIBAIO,
        iodepth=1,
        io_count=3000,
    )
    result = run_job(sim, stack, job)
    summary = result.latency
    print(f"{label:28s} mean={summary.mean_us:6.1f}us  "
          f"p99={summary.p99_us:7.1f}us  p99.999={summary.p99999_us:8.1f}us  "
          f"IOPS={result.iops:9.0f}  power={result.avg_power_w:.2f}W")


def main() -> None:
    print("4KB random reads, libaio QD1, interrupt completion\n")
    measure(resolve_config("zssd"), "ULL SSD (Z-SSD)")
    measure(resolve_config("intel750"), "NVMe SSD (Intel 750-class)")
    print("\nThe ULL SSD's Z-NAND (tR = 3us) keeps random reads near 16us;")
    print("the NVMe SSD's MLC (tR = 70us) exposes raw flash latency on")
    print("cache misses - the paper's 5.2x gap (Section IV-A).")


if __name__ == "__main__":
    main()
