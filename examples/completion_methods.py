#!/usr/bin/env python
"""Compare the three kernel I/O completion methods on a ULL SSD.

Reproduces the paper's Section V story in one run: polling shaves the
MSI + ISR + context-switch path off every I/O, but burns the entire core
in kernel mode; hybrid polling sleeps half the expected wait and lands
in between on both axes.  The five-nines column shows polling's darker
side — long device stalls cost the spinning thread scheduler goodwill.

Run:  python examples/completion_methods.py
"""

from repro import (
    CompletionMethod,
    FioJob,
    IoEngineKind,
    KernelStack,
    Simulator,
    SsdDevice,
    run_job,
)
from repro.host.accounting import ExecMode
from repro.ssd.registry import resolve_config

IO_COUNT = 8000


def measure(method: CompletionMethod):
    sim = Simulator()
    device = SsdDevice(sim, resolve_config("zssd"))
    device.precondition()
    stack = KernelStack(sim, device, completion=method)
    job = FioJob(
        name=f"ull-{method.value}",
        rw="randread",
        engine=IoEngineKind.PSYNC,
        io_count=IO_COUNT,
    )
    return run_job(sim, stack, job)


def main() -> None:
    print(f"ULL SSD, 4KB random reads, pvsync2, {IO_COUNT} I/Os per method\n")
    print(f"{'method':12s} {'mean':>8s} {'p99.999':>10s} "
          f"{'CPU user':>9s} {'CPU kern':>9s}")
    baseline = None
    for method in CompletionMethod:
        result = measure(method)
        if baseline is None:
            baseline = result.latency.mean_ns
        saving = 100.0 * (1 - result.latency.mean_ns / baseline)
        print(
            f"{method.value:12s} {result.latency.mean_us:7.1f}us "
            f"{result.latency.p99999_us:9.1f}us "
            f"{100 * result.cpu_utilization(ExecMode.USER):8.1f}% "
            f"{100 * result.cpu_utilization(ExecMode.KERNEL):8.1f}%"
            + (f"   ({saving:+.1f}% vs interrupt)" if method is not CompletionMethod.INTERRUPT else "")
        )
    print("\nPolling wins the average but owns the core (Figs. 10, 13);")
    print("its 99.999th percentile is *worse* than interrupts (Fig. 11);")
    print("hybrid polling halves the spin at a small latency cost (Figs. 12, 16).")


if __name__ == "__main__":
    main()
