#!/usr/bin/env python
"""SPDK kernel bypass vs. the kernel stack, on both devices.

Reproduces the Section VI contrast: on the NVMe SSD the device dominates
and SPDK buys almost nothing; on the ULL SSD, removing syscalls, blk-mq
and the interrupt path is worth ~25% — but the user-space poll loop
pins the core at 100% and multiplies memory traffic by an order of
magnitude (Figs. 17, 18, 20, 21).

Run:  python examples/spdk_vs_kernel.py
"""

from repro import (
    CompletionMethod,
    FioJob,
    IoEngineKind,
    KernelStack,
    Simulator,
    SpdkStack,
    SsdDevice,
    run_job,
)
from repro.ssd.registry import resolve_config

IO_COUNT = 4000


def measure(config, use_spdk: bool):
    sim = Simulator()
    device = SsdDevice(sim, config)
    device.precondition()
    if use_spdk:
        stack = SpdkStack(sim, device)
        engine = IoEngineKind.SPDK
    else:
        stack = KernelStack(sim, device, completion=CompletionMethod.INTERRUPT)
        engine = IoEngineKind.PSYNC
    job = FioJob(name="cmp", rw="read", engine=engine, io_count=IO_COUNT)
    result = run_job(sim, stack, job)
    per_io_loads = stack.accounting.total_loads() / IO_COUNT
    return result, per_io_loads


def main() -> None:
    print(f"4KB sequential reads, QD1, {IO_COUNT} I/Os per configuration\n")
    print(f"{'device':28s} {'stack':18s} {'mean':>8s} {'CPU':>7s} {'loads/IO':>9s}")
    for config in (resolve_config("intel750"), resolve_config("zssd")):
        rows = []
        for use_spdk in (False, True):
            result, loads = measure(config, use_spdk)
            rows.append((result, loads, "SPDK" if use_spdk else "kernel interrupt"))
        for result, loads, label in rows:
            print(
                f"{config.name:28s} {label:18s} {result.latency.mean_us:7.1f}us "
                f"{100 * result.cpu_utilization():6.1f}% {loads:9.0f}"
            )
        kernel, spdk = rows[0][0], rows[1][0]
        saving = 100 * (1 - spdk.latency.mean_ns / kernel.latency.mean_ns)
        print(f"{'':28s} -> SPDK saves {saving:.1f}% "
              f"({'worth it' if saving > 15 else 'negligible'})\n")


if __name__ == "__main__":
    main()
